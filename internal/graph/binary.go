package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: a compact serialization for large graphs (the text format
// is human-readable but ~5x larger and slower to parse).
//
//	magic   [4]byte  "QGP1"
//	labels  uvarint, then per label: uvarint length + bytes
//	nodes   uvarint, then per node: uvarint label id
//	edges   uvarint, then per edge: uvarint from, uvarint to, uvarint label
//
// Edges are delta-encoded by source: sources are non-decreasing and each
// source is stored as a delta from the previous one.

var binaryMagic = [4]byte{'Q', 'G', 'P', '1'}

// WriteBinary serializes g in the binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	put := func(x uint64) error {
		n := binary.PutUvarint(scratch[:], x)
		_, err := bw.Write(scratch[:n])
		return err
	}

	if err := put(uint64(g.interner.Len())); err != nil {
		return err
	}
	for i := 0; i < g.interner.Len(); i++ {
		name := g.interner.Name(LabelID(i))
		if err := put(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}

	if err := put(uint64(g.NumNodes())); err != nil {
		return err
	}
	for _, l := range g.nodeLabel {
		if err := put(uint64(l)); err != nil {
			return err
		}
	}

	if err := put(uint64(g.NumEdges())); err != nil {
		return err
	}
	prev := uint64(0)
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.out[v] {
			if err := put(uint64(v) - prev); err != nil {
				return err
			}
			prev = uint64(v)
			if err := put(uint64(e.To)); err != nil {
				return err
			}
			if err := put(uint64(e.Label)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph in the binary format and finalizes it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }

	nLabels, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: label count: %w", err)
	}
	if nLabels > 1<<24 {
		return nil, fmt.Errorf("graph: implausible label count %d", nLabels)
	}
	g := New(0)
	for i := uint64(0); i < nLabels; i++ {
		ln, err := get()
		if err != nil {
			return nil, fmt.Errorf("graph: label %d length: %w", i, err)
		}
		if ln > 1<<20 {
			return nil, fmt.Errorf("graph: implausible label length %d", ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: label %d: %w", i, err)
		}
		if got := g.Label(string(buf)); got != LabelID(i) {
			return nil, fmt.Errorf("graph: duplicate label %q in table", buf)
		}
	}

	nNodes, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: node count: %w", err)
	}
	if nNodes > 1<<31 {
		return nil, fmt.Errorf("graph: implausible node count %d", nNodes)
	}
	for i := uint64(0); i < nNodes; i++ {
		l, err := get()
		if err != nil {
			return nil, fmt.Errorf("graph: node %d: %w", i, err)
		}
		if l >= nLabels {
			return nil, fmt.Errorf("graph: node %d has label %d of %d", i, l, nLabels)
		}
		g.AddNodeLabel(LabelID(l))
	}

	nEdges, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: edge count: %w", err)
	}
	prev := uint64(0)
	for i := uint64(0); i < nEdges; i++ {
		delta, err := get()
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		from := prev + delta
		prev = from
		to, err := get()
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d target: %w", i, err)
		}
		l, err := get()
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d label: %w", i, err)
		}
		if from >= nNodes || to >= nNodes || l >= nLabels {
			return nil, fmt.Errorf("graph: edge %d out of range", i)
		}
		g.AddEdgeLabel(NodeID(from), NodeID(to), LabelID(l))
	}
	g.Finalize()
	return g, nil
}

// ReadAuto detects the serialization format (binary magic vs. text) and
// parses accordingly.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && [4]byte(head) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}
