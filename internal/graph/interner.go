package graph

// Interner maps label strings to dense LabelIDs and back. The zero value is
// ready to use. Interner is not safe for concurrent mutation; all graphs are
// finalized before being shared across goroutines.
type Interner struct {
	byName map[string]LabelID
	names  []string
}

// Intern returns the id for s, allocating one if necessary.
func (in *Interner) Intern(s string) LabelID {
	if id, ok := in.byName[s]; ok {
		return id
	}
	if in.byName == nil {
		in.byName = make(map[string]LabelID)
	}
	id := LabelID(len(in.names))
	in.byName[s] = id
	in.names = append(in.names, s)
	return id
}

// Lookup returns the id for s, or NoLabel when s has not been interned.
func (in *Interner) Lookup(s string) LabelID {
	if id, ok := in.byName[s]; ok {
		return id
	}
	return NoLabel
}

// Name returns the string for id. It panics on ids never handed out.
func (in *Interner) Name(id LabelID) string { return in.names[id] }

// Len returns the number of interned labels.
func (in *Interner) Len() int { return len(in.names) }
