package graph

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// canon renders a graph in an interner-order-independent canonical
// form: node labels by id, then edge triples sorted by (from, to,
// label name). In-place maintenance and a from-scratch rebuild must
// agree on this even though their LabelID assignments differ.
func canon(g *Graph) []string {
	var lines []string
	for v := 0; v < g.NumNodes(); v++ {
		lines = append(lines, fmt.Sprintf("n %d %s", v, g.NodeLabelName(NodeID(v))))
	}
	var edges []string
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(NodeID(v)) {
			edges = append(edges, fmt.Sprintf("e %d %d %s", v, e.To, g.LabelName(e.Label)))
		}
	}
	sort.Strings(edges)
	return append(lines, edges...)
}

func testGraph() *Graph {
	g := New(5)
	for _, l := range []string{"person", "person", "person", "item", "item"} {
		g.AddNode(l)
	}
	g.AddEdge(0, 1, "follow")
	g.AddEdge(1, 2, "follow")
	g.AddEdge(2, 0, "follow")
	g.AddEdge(0, 3, "rate")
	g.AddEdge(1, 3, "rate")
	g.AddEdge(2, 4, "rate")
	g.Finalize()
	return g
}

func TestVersionedApplyMatchesRebuild(t *testing.T) {
	vg := NewVersioned(testGraph())
	batch := []Mutation{
		{Op: MutAddNode, Label: "person"},
		{Op: MutAddEdge, From: 5, To: 0, Label: "follow"},
		{Op: MutAddEdge, From: 0, To: 1, Label: "follow"}, // dup: no-op
		{Op: MutRemoveEdge, From: 1, To: 2, Label: "follow"},
		{Op: MutRemoveEdge, From: 3, To: 4, Label: "never"}, // absent: no-op
		{Op: MutRemoveNode, From: 2},
	}
	old, touched, err := vg.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the expected graph from scratch.
	want := New(6)
	for _, l := range []string{"person", "person", "person", "item", "item", "person"} {
		want.AddNode(l)
	}
	want.AddEdge(0, 1, "follow")
	want.AddEdge(0, 3, "rate")
	want.AddEdge(1, 3, "rate")
	want.AddEdge(5, 0, "follow")
	want.Finalize()

	if got := canon(vg.Graph()); !reflect.DeepEqual(got, canon(want)) {
		t.Fatalf("in-place result:\n%v\nwant:\n%v", got, canon(want))
	}
	if vg.Graph().NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", vg.Graph().NumEdges())
	}
	// 0,1 (edge endpoints incl. no-op dup), 2 (removed) + former
	// neighbors 0,4, new node 5, absent-remove endpoints 3,4.
	if want := []NodeID{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(touched, want) {
		t.Fatalf("touched = %v, want %v", touched, want)
	}

	// The old view still answers pre-batch questions.
	if old.NumNodes() != 5 || old.NumEdges() != 6 {
		t.Fatalf("old view %d/%d, want 5/6", old.NumNodes(), old.NumEdges())
	}
	follow := old.LookupLabel("follow")
	if !old.HasEdge(1, 2, follow) {
		t.Fatal("old view lost edge 1->2")
	}
	if old.HasEdge(5, 0, follow) {
		t.Fatal("old view sees the batch's new edge")
	}
	if got := old.Neighborhood(2, 1); !reflect.DeepEqual(got, []NodeID{0, 1, 2, 4}) {
		t.Fatalf("old 1-hop of 2 = %v", got)
	}
	if got := vg.Graph().Neighborhood(2, 1); !reflect.DeepEqual(got, []NodeID{2}) {
		t.Fatalf("new 1-hop of tombstoned 2 = %v", got)
	}

	// Degree index maintained in place.
	if got := vg.Graph().CountOut(5, follow); got != 1 {
		t.Fatalf("CountOut(5, follow) = %d", got)
	}
	if got := vg.Graph().CountOut(2, follow); got != 0 {
		t.Fatalf("CountOut(2, follow) = %d after tombstone", got)
	}
	if got := vg.Graph().NodesByLabelName("person"); !reflect.DeepEqual(got, []NodeID{0, 1, 2, 5}) {
		t.Fatalf("NodesByLabel(person) = %v", got)
	}
}

func TestVersionedApplyValidatesUpfront(t *testing.T) {
	vg := NewVersioned(testGraph())
	before := canon(vg.Graph())
	ver := vg.Version()
	bad := [][]Mutation{
		{{Op: MutAddEdge, From: 0, To: 99, Label: "x"}},
		{{Op: MutRemoveEdge, From: -1, To: 0, Label: "x"}},
		{{Op: MutRemoveNode, From: 5}},
		{{Op: MutAddNode, Label: "p"}, {Op: MutAddEdge, From: 6, To: 0, Label: "x"}},
		{{Op: MutAddEdge, From: 0, To: 1, Label: "x"}, {Op: MutInvalid, From: 0}},
	}
	for i, batch := range bad {
		if _, _, err := vg.Apply(batch); err == nil {
			t.Fatalf("batch %d: expected error", i)
		}
		if got := canon(vg.Graph()); !reflect.DeepEqual(got, before) {
			t.Fatalf("batch %d: failed apply mutated the graph", i)
		}
		if vg.Version() != ver {
			t.Fatalf("batch %d: failed apply advanced the version", i)
		}
	}
	// A node added earlier in the batch is addressable later in it.
	if _, _, err := vg.Apply([]Mutation{
		{Op: MutAddNode, Label: "p"},
		{Op: MutAddEdge, From: 5, To: 5, Label: "self"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedRollback(t *testing.T) {
	vg := NewVersioned(testGraph())
	before := canon(vg.Graph())
	old, _, err := vg.Apply([]Mutation{
		{Op: MutAddNode, Label: "extra"},
		{Op: MutAddEdge, From: 5, To: 2, Label: "follow"},
		{Op: MutRemoveNode, From: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(canon(vg.Graph()), before) {
		t.Fatal("apply was a no-op?")
	}
	if err := vg.Rollback(old); err != nil {
		t.Fatal(err)
	}
	if got := canon(vg.Graph()); !reflect.DeepEqual(got, before) {
		t.Fatalf("rollback result:\n%v\nwant:\n%v", got, before)
	}
	g := vg.Graph()
	if got := g.CountOut(0, g.LookupLabel("follow")); got != 1 {
		t.Fatalf("CountOut(0, follow) = %d after rollback", got)
	}
	if got := g.NodesByLabelName("person"); !reflect.DeepEqual(got, []NodeID{0, 1, 2}) {
		t.Fatalf("NodesByLabel(person) = %v after rollback", got)
	}
	if err := vg.Rollback(old); err == nil {
		t.Fatal("double rollback accepted")
	}
}

func TestOldViewGoesStale(t *testing.T) {
	vg := NewVersioned(testGraph())
	old, _, err := vg.Apply([]Mutation{{Op: MutAddEdge, From: 0, To: 4, Label: "rate"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vg.Apply([]Mutation{{Op: MutRemoveEdge, From: 0, To: 4, Label: "rate"}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stale OldView read did not panic")
		}
	}()
	old.Out(0)
}

func TestCloneIsIndependent(t *testing.T) {
	g := testGraph()
	cl := g.Clone()
	if !reflect.DeepEqual(canon(cl), canon(g)) {
		t.Fatal("clone differs")
	}
	vg := NewVersioned(cl)
	if _, _, err := vg.Apply([]Mutation{{Op: MutRemoveNode, From: 0}}); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 6 || len(g.Out(0)) != 2 {
		t.Fatal("mutating the clone reached the original")
	}
}

func TestInducedOfOldView(t *testing.T) {
	vg := NewVersioned(testGraph())
	old, _, err := vg.Apply([]Mutation{{Op: MutRemoveNode, From: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sub, toGlobal := InducedOf(old, []NodeID{0, 1, 2})
	if !reflect.DeepEqual(toGlobal, []NodeID{0, 1, 2}) {
		t.Fatalf("toGlobal = %v", toGlobal)
	}
	// The pre-batch triangle 0->1->2->0 survives in the induced sub.
	if sub.NumEdges() != 3 {
		t.Fatalf("induced edges = %d, want 3", sub.NumEdges())
	}
}
