// Versioned in-place graph maintenance: apply a mutation batch as a
// delta over the live adjacency instead of rebuilding the world. A
// batch applied through Versioned.Apply edits the finalized indexes
// directly (copy-on-write per adjacency row) and hands back an OldView
// — a cheap pre-batch read handle over exactly the rows the batch
// displaced — so the §5.2 affected-set computation ("deletions in the
// old graph, insertions in the new") works without two full graphs.
// Per-batch cost is proportional to |batch| plus the degree of the
// touched nodes, the Berkholz–Keppeler–Schweikardt target of cost
// proportional to the change rather than the database.
package graph

import (
	"fmt"
	"sort"
)

// Version is a monotonically increasing token identifying a Versioned
// graph's state. Every successful Apply (and Rollback) advances it; an
// OldView is pinned to the version its batch created and panics if
// read after a later one.
type Version uint64

// MutationOp enumerates the graph-level delta vocabulary. It mirrors
// internal/store's mutation ops one-for-one (store depends on graph,
// not the other way around).
type MutationOp uint8

const (
	// MutInvalid is the zero op; Apply rejects it.
	MutInvalid MutationOp = iota
	// MutAddNode appends a node with Label; From/To are ignored.
	MutAddNode
	// MutAddEdge inserts edge (From, To, Label); a duplicate is a no-op.
	MutAddEdge
	// MutRemoveEdge deletes edge (From, To, Label); absence is a no-op.
	MutRemoveEdge
	// MutRemoveNode isolates node From (removes every incident edge)
	// but keeps its slot and label, the store's tombstone semantics:
	// node ids stay dense and stable.
	MutRemoveNode
)

// Mutation is one graph change in the versioned core's vocabulary.
type Mutation struct {
	Op       MutationOp
	From, To NodeID
	Label    string
}

// View is the read surface shared by a live *Graph and an OldView:
// everything update planning, affected-set computation, and fragment
// (re-)shipping need. *Graph satisfies it directly.
type View interface {
	NumNodes() int
	NumEdges() int
	NodeLabelName(v NodeID) string
	LabelName(id LabelID) string
	LookupLabel(s string) LabelID
	Out(v NodeID) []Edge
	In(v NodeID) []Edge
	HasEdge(from, to NodeID, l LabelID) bool
	Neighborhood(v NodeID, d int) []NodeID
}

var (
	_ View = (*Graph)(nil)
	_ View = (*OldView)(nil)
)

// Versioned wraps a finalized Graph and maintains it in place under
// mutation batches. The wrapped graph stays finalized at all times:
// adjacency rows keep their (label, endpoint) sort order and the
// byLabel / outCount indexes are edited incrementally, so queries
// never pay a re-Finalize. Not safe for concurrent use; callers
// serialize Apply/Rollback against readers the same way they would
// serialize rebuilds.
type Versioned struct {
	g   *Graph
	ver Version
}

// NewVersioned wraps g (finalizing it if needed) for in-place
// maintenance. The caller must not mutate g behind the wrapper's back.
func NewVersioned(g *Graph) *Versioned {
	g.Finalize()
	return &Versioned{g: g}
}

// Graph returns the live (newest-version) graph. The pointer is stable
// across Apply calls — the graph mutates in place.
func (vg *Versioned) Graph() *Graph { return vg.g }

// Version returns the current version token.
func (vg *Versioned) Version() Version { return vg.ver }

// OldView is a read-only handle on the graph as it was immediately
// before one Apply batch. It holds only the adjacency rows that batch
// displaced (copy-on-write) and delegates everything else to the live
// graph, so it costs O(|batch| + degree of touched nodes), not O(|G|).
// It is valid until the next Apply or Rollback on the same Versioned;
// reads after that panic rather than silently serving mixed versions.
type OldView struct {
	vg      *Versioned
	validAt Version

	numNodes int
	numEdges int
	// prevOut/prevIn hold the pre-batch adjacency rows of exactly the
	// nodes whose rows the batch replaced. Absent nodes were untouched,
	// so the live rows still are the pre-batch rows.
	prevOut map[NodeID][]Edge
	prevIn  map[NodeID][]Edge
}

func (ov *OldView) check() {
	if ov.vg.ver != ov.validAt {
		panic("graph: OldView read after a later Apply/Rollback")
	}
}

// NumNodes returns the pre-batch node count.
func (ov *OldView) NumNodes() int { ov.check(); return ov.numNodes }

// NumEdges returns the pre-batch edge count.
func (ov *OldView) NumEdges() int { ov.check(); return ov.numEdges }

// NodeLabelName returns the pre-batch label of v. Node labels are
// immutable once assigned (tombstones keep theirs), so this delegates.
func (ov *OldView) NodeLabelName(v NodeID) string { ov.check(); return ov.vg.g.NodeLabelName(v) }

// LabelName resolves an interned label id; the interner is append-only
// so pre-batch ids are stable.
func (ov *OldView) LabelName(id LabelID) string { ov.check(); return ov.vg.g.LabelName(id) }

// LookupLabel resolves a label string. A label first interned by the
// batch resolves here too, but it cannot occur on any pre-batch edge,
// so old-view reads stay consistent.
func (ov *OldView) LookupLabel(s string) LabelID { ov.check(); return ov.vg.g.LookupLabel(s) }

// Out returns the pre-batch out-adjacency of v (sorted by label, then
// endpoint). Nodes created by the batch have no pre-batch adjacency.
func (ov *OldView) Out(v NodeID) []Edge {
	ov.check()
	if int(v) >= ov.numNodes {
		return nil
	}
	if row, ok := ov.prevOut[v]; ok {
		return row
	}
	return ov.vg.g.out[v]
}

// In returns the pre-batch in-adjacency of v (Edge.To is the source).
func (ov *OldView) In(v NodeID) []Edge {
	ov.check()
	if int(v) >= ov.numNodes {
		return nil
	}
	if row, ok := ov.prevIn[v]; ok {
		return row
	}
	return ov.vg.g.in[v]
}

// HasEdge reports whether (from, to, l) existed before the batch.
func (ov *OldView) HasEdge(from, to NodeID, l LabelID) bool {
	ov.check()
	if int(from) >= ov.numNodes || int(to) >= ov.numNodes {
		return false
	}
	row := ov.Out(from)
	i := sort.Search(len(row), func(i int) bool {
		if row[i].Label != l {
			return row[i].Label > l
		}
		return row[i].To >= to
	})
	return i < len(row) && row[i] == (Edge{To: to, Label: l})
}

// Neighborhood returns the nodes within d undirected hops of v in the
// pre-batch graph (including v), ascending — Nd(v) over the old view.
func (ov *OldView) Neighborhood(v NodeID, d int) []NodeID {
	ov.check()
	return viewNeighborhood(ov, v, d)
}

// viewNeighborhood is Graph.Neighborhood generalized to any View.
func viewNeighborhood(g View, v NodeID, d int) []NodeID {
	seen := map[NodeID]bool{v: true}
	frontier := []NodeID{v}
	for hop := 0; hop < d; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for _, e := range g.Out(u) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range g.In(u) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	out := make([]NodeID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InducedOf returns the subgraph induced by nodes over any View, with
// the local→global id mapping. It preserves the input node order
// exactly as (*Graph).Induced does — failover re-ships depend on that
// for local-id stability.
func InducedOf(g View, nodes []NodeID) (*Graph, []NodeID) {
	local := make(map[NodeID]NodeID, len(nodes))
	sub := New(len(nodes))
	var toGlobal []NodeID
	for _, v := range nodes {
		if _, ok := local[v]; ok {
			continue
		}
		id := sub.AddNode(g.NodeLabelName(v))
		local[v] = id
		toGlobal = append(toGlobal, v)
	}
	for _, v := range toGlobal {
		lv := local[v]
		for _, e := range g.Out(v) {
			if lu, ok := local[e.To]; ok {
				sub.AddEdge(lv, lu, g.LabelName(e.Label))
			}
		}
	}
	sub.Finalize()
	return sub, toGlobal
}

// Clone returns a deep copy of g sharing no mutable state, preserving
// finalization, interner order, and all indexes.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		nodeLabel: append([]LabelID(nil), g.nodeLabel...),
		out:       make([][]Edge, len(g.out)),
		in:        make([][]Edge, len(g.in)),
		numEdges:  g.numEdges,
		finalized: g.finalized,
	}
	for v := range g.out {
		ng.out[v] = append([]Edge(nil), g.out[v]...)
	}
	for v := range g.in {
		ng.in[v] = append([]Edge(nil), g.in[v]...)
	}
	ng.interner.names = append([]string(nil), g.interner.names...)
	if g.interner.byName != nil {
		ng.interner.byName = make(map[string]LabelID, len(g.interner.byName))
		for s, id := range g.interner.byName {
			ng.interner.byName[s] = id
		}
	}
	if g.byLabel != nil {
		ng.byLabel = make(map[LabelID][]NodeID, len(g.byLabel))
		for l, vs := range g.byLabel {
			ng.byLabel[l] = append([]NodeID(nil), vs...)
		}
	}
	if g.outCount != nil {
		ng.outCount = make([]map[LabelID]int32, len(g.outCount))
		for v, m := range g.outCount {
			nm := make(map[LabelID]int32, len(m))
			for l, c := range m {
				nm[l] = c
			}
			ng.outCount[v] = nm
		}
	}
	return ng
}

// insertSorted inserts e into a (label, endpoint)-sorted row, reporting
// whether it was absent (and therefore inserted).
func insertSorted(row []Edge, e Edge) ([]Edge, bool) {
	i := sort.Search(len(row), func(i int) bool {
		if row[i].Label != e.Label {
			return row[i].Label > e.Label
		}
		return row[i].To >= e.To
	})
	if i < len(row) && row[i] == e {
		return row, false
	}
	row = append(row, Edge{})
	copy(row[i+1:], row[i:])
	row[i] = e
	return row, true
}

// removeSorted removes e from a sorted row, reporting whether it was
// present (and therefore removed).
func removeSorted(row []Edge, e Edge) ([]Edge, bool) {
	i := sort.Search(len(row), func(i int) bool {
		if row[i].Label != e.Label {
			return row[i].Label > e.Label
		}
		return row[i].To >= e.To
	})
	if i >= len(row) || row[i] != e {
		return row, false
	}
	copy(row[i:], row[i+1:])
	return row[:len(row)-1], true
}

// Apply applies the batch in place and returns the pre-batch OldView
// plus the sorted touched set: endpoints of inserted or removed edges
// (named by the batch even when the op was a no-op), newly added
// nodes, isolated nodes and their former neighbors — bit-exact with
// the legacy rebuild path's touched semantics.
//
// The whole batch is validated up front against the projected node
// count, so an error leaves the graph untouched at its prior version.
// On success the version advances and any earlier OldView goes stale.
func (vg *Versioned) Apply(muts []Mutation) (*OldView, []NodeID, error) {
	g := vg.g
	n := g.NumNodes()
	for _, m := range muts {
		switch m.Op {
		case MutAddNode:
			n++
		case MutAddEdge, MutRemoveEdge:
			if m.From < 0 || int(m.From) >= n || m.To < 0 || int(m.To) >= n {
				return nil, nil, fmt.Errorf("graph: %+v references a node outside [0, %d)", m, n)
			}
		case MutRemoveNode:
			if m.From < 0 || int(m.From) >= n {
				return nil, nil, fmt.Errorf("graph: %+v references a node outside [0, %d)", m, n)
			}
		default:
			return nil, nil, fmt.Errorf("graph: unknown mutation op %d", m.Op)
		}
	}

	ov := &OldView{
		vg:       vg,
		numNodes: g.NumNodes(),
		numEdges: g.numEdges,
		prevOut:  make(map[NodeID][]Edge),
		prevIn:   make(map[NodeID][]Edge),
	}
	// Copy-on-write: the first edit of a pre-batch row parks the
	// original slice in the OldView and installs a private copy in the
	// live graph. Rows of nodes created by this batch are born owned.
	dirtyOut := make(map[NodeID]bool)
	dirtyIn := make(map[NodeID]bool)
	cowOut := func(v NodeID) {
		if dirtyOut[v] {
			return
		}
		dirtyOut[v] = true
		if int(v) < ov.numNodes {
			ov.prevOut[v] = g.out[v]
			g.out[v] = append([]Edge(nil), g.out[v]...)
		}
	}
	cowIn := func(v NodeID) {
		if dirtyIn[v] {
			return
		}
		dirtyIn[v] = true
		if int(v) < ov.numNodes {
			ov.prevIn[v] = g.in[v]
			g.in[v] = append([]Edge(nil), g.in[v]...)
		}
	}

	touched := make(map[NodeID]bool)
	for _, m := range muts {
		switch m.Op {
		case MutAddNode:
			l := g.interner.Intern(m.Label)
			id := NodeID(len(g.nodeLabel))
			g.nodeLabel = append(g.nodeLabel, l)
			g.out = append(g.out, nil)
			g.in = append(g.in, nil)
			g.outCount = append(g.outCount, make(map[LabelID]int32, 4))
			// Ids ascend, so appending keeps byLabel rows sorted.
			g.byLabel[l] = append(g.byLabel[l], id)
			dirtyOut[id], dirtyIn[id] = true, true
			touched[id] = true

		case MutAddEdge:
			// If the edge already exists its label is already interned,
			// so Intern never adds a label on a no-op.
			l := g.interner.Intern(m.Label)
			cowOut(m.From)
			cowIn(m.To)
			row, inserted := insertSorted(g.out[m.From], Edge{To: m.To, Label: l})
			if inserted {
				g.out[m.From] = row
				g.in[m.To], _ = insertSorted(g.in[m.To], Edge{To: m.From, Label: l})
				g.numEdges++
				g.outCount[m.From][l]++
			}
			touched[m.From], touched[m.To] = true, true

		case MutRemoveEdge:
			// Lookup, not Intern: removing via a never-seen label must
			// not grow the interner.
			if l := g.interner.Lookup(m.Label); l != NoLabel {
				cowOut(m.From)
				cowIn(m.To)
				row, removed := removeSorted(g.out[m.From], Edge{To: m.To, Label: l})
				if removed {
					g.out[m.From] = row
					g.in[m.To], _ = removeSorted(g.in[m.To], Edge{To: m.From, Label: l})
					g.numEdges--
					if g.outCount[m.From][l]--; g.outCount[m.From][l] == 0 {
						delete(g.outCount[m.From], l)
					}
				}
			}
			touched[m.From], touched[m.To] = true, true

		case MutRemoveNode:
			v := m.From
			touched[v] = true
			cowOut(v)
			cowIn(v)
			outs, ins := g.out[v], g.in[v]
			selfLoops := 0
			for _, e := range outs {
				touched[e.To] = true
				if e.To == v {
					selfLoops++
					continue
				}
				cowIn(e.To)
				g.in[e.To], _ = removeSorted(g.in[e.To], Edge{To: v, Label: e.Label})
			}
			for _, e := range ins {
				touched[e.To] = true
				if e.To == v {
					continue // its mirror died with out[v]
				}
				cowOut(e.To)
				g.out[e.To], _ = removeSorted(g.out[e.To], Edge{To: v, Label: e.Label})
				if g.outCount[e.To][e.Label]--; g.outCount[e.To][e.Label] == 0 {
					delete(g.outCount[e.To], e.Label)
				}
			}
			g.numEdges -= len(outs) + len(ins) - selfLoops
			g.out[v], g.in[v] = nil, nil
			g.outCount[v] = make(map[LabelID]int32, 4)
		}
	}

	vg.ver++
	ov.validAt = vg.ver
	ts := make([]NodeID, 0, len(touched))
	for v := range touched {
		ts = append(ts, v)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ov, ts, nil
}

// Rollback undoes the batch that produced ov, restoring the exact
// pre-batch adjacency and indexes. Only the most recent batch can be
// rolled back (ov must still be the current version). The interner may
// retain labels the batch introduced — harmless, since no node or edge
// references them afterwards. Rollback consumes ov: the version
// advances and ov (like any other outstanding view) goes stale.
func (vg *Versioned) Rollback(ov *OldView) error {
	if ov == nil || ov.vg != vg {
		return fmt.Errorf("graph: rollback with a view from a different graph")
	}
	if vg.ver != ov.validAt {
		return fmt.Errorf("graph: rollback of a stale view (version %d, now %d)", ov.validAt, vg.ver)
	}
	g := vg.g
	// Un-append the batch's new nodes. Their byLabel entries are the
	// tails of their rows: every pre-batch entry is a smaller id.
	for v := ov.numNodes; v < len(g.nodeLabel); v++ {
		l := g.nodeLabel[v]
		row := g.byLabel[l]
		g.byLabel[l] = row[:len(row)-1]
	}
	g.nodeLabel = g.nodeLabel[:ov.numNodes]
	g.out = g.out[:ov.numNodes]
	g.in = g.in[:ov.numNodes]
	g.outCount = g.outCount[:ov.numNodes]
	// Restore displaced rows and recompute their degree counts.
	for v, row := range ov.prevOut {
		g.out[v] = row
		m := make(map[LabelID]int32, 4)
		for _, e := range row {
			m[e.Label]++
		}
		g.outCount[v] = m
	}
	for v, row := range ov.prevIn {
		g.in[v] = row
	}
	g.numEdges = ov.numEdges
	vg.ver++
	return nil
}
