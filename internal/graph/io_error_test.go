package graph

import (
	"errors"
	"testing"
)

// failWriter fails after n bytes.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteToPropagatesErrors(t *testing.T) {
	g := New(3)
	a := g.AddNode("x")
	b := g.AddNode("y")
	g.AddEdge(a, b, "r")
	g.Finalize()

	wantErr := errors.New("disk full")
	// Fail at various points: header, node lines, edge lines, flush.
	for _, budget := range []int{0, 5, 12, 20} {
		w := &failWriter{n: budget, err: wantErr}
		if _, err := g.WriteTo(w); !errors.Is(err, wantErr) {
			t.Errorf("budget %d: WriteTo error = %v, want %v", budget, err, wantErr)
		}
	}
}

func TestWriteToByteCount(t *testing.T) {
	g := New(2)
	a := g.AddNode("x")
	b := g.AddNode("y")
	g.AddEdge(a, b, "r")
	g.Finalize()

	var sink countWriter
	n, err := g.WriteTo(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(sink) {
		t.Fatalf("WriteTo reported %d bytes, sink got %d", n, int64(sink))
	}
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}
