package core

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/scan"
)

// Parse reads a pattern in the textual DSL emitted by Pattern.String:
//
//	qgp
//	n <name> <label> [*]        # node; '*' marks the query focus
//	e <from> <to> <label> [q]   # edge with optional quantifier
//
// Quantifiers: ">=N", ">N", "=N", "<=N", "<N", "!=N" (numeric; "=0" is
// negation) and ">=P%", "=P%", "<=P%", "!=P%" (ratio, P a decimal
// percentage). An omitted quantifier is the existential ">=1". Lines
// starting with '#' are comments.
//
// Parse validates the result with Validate.
func Parse(input string) (*Pattern, error) {
	sc := bufio.NewScanner(strings.NewReader(input))
	p := NewPattern()
	sawHeader := false
	focusSet := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields, err := scan.Fields(text)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %v", line, err)
		}
		switch fields[0] {
		case "qgp":
			sawHeader = true
		case "n":
			if !sawHeader {
				return nil, fmt.Errorf("core: line %d: missing qgp header", line)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("core: line %d: want 'n <name> <label> [*]'", line)
			}
			if _, dup := p.NodeIndex(fields[1]); dup {
				return nil, fmt.Errorf("core: line %d: duplicate node %q", line, fields[1])
			}
			p.AddNode(fields[1], fields[2])
			if len(fields) == 4 {
				if fields[3] != "*" {
					return nil, fmt.Errorf("core: line %d: unexpected %q (only '*' marks focus)", line, fields[3])
				}
				if focusSet {
					return nil, fmt.Errorf("core: line %d: multiple focus nodes", line)
				}
				p.SetFocus(fields[1])
				focusSet = true
			}
		case "e":
			if !sawHeader {
				return nil, fmt.Errorf("core: line %d: missing qgp header", line)
			}
			if len(fields) != 4 && len(fields) != 5 {
				return nil, fmt.Errorf("core: line %d: want 'e <from> <to> <label> [quantifier]'", line)
			}
			from, ok := p.NodeIndex(fields[1])
			if !ok {
				return nil, fmt.Errorf("core: line %d: unknown node %q", line, fields[1])
			}
			to, ok := p.NodeIndex(fields[2])
			if !ok {
				return nil, fmt.Errorf("core: line %d: unknown node %q", line, fields[2])
			}
			q := Exists()
			if len(fields) == 5 {
				var err error
				q, err = ParseQuantifier(fields[4])
				if err != nil {
					return nil, fmt.Errorf("core: line %d: %v", line, err)
				}
			}
			p.Edges = append(p.Edges, PEdge{From: from, To: to, Label: fields[3], Q: q})
		default:
			return nil, fmt.Errorf("core: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("core: missing qgp header")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseQuantifier parses a quantifier token: ">=N", ">N", "=N", "<=N",
// "<N", "!=N" and the ratio forms ">=P%", "=P%", "<=P%", "!=P%" (P may
// have up to two decimal places). ">N" and "<N" normalize to ">=N+1" and
// "<=N-1".
func ParseQuantifier(s string) (Quantifier, error) {
	var op Op
	var rest string
	var gt, lt bool
	switch {
	case strings.HasPrefix(s, ">="):
		op, rest = GE, s[2:]
	case strings.HasPrefix(s, ">"):
		op, rest, gt = GE, s[1:], true
	case strings.HasPrefix(s, "<="):
		op, rest = LE, s[2:]
	case strings.HasPrefix(s, "<"):
		op, rest, lt = LE, s[1:], true
	case strings.HasPrefix(s, "!="):
		op, rest = NE, s[2:]
	case strings.HasPrefix(s, "="):
		op, rest = EQ, s[1:]
	default:
		return Quantifier{}, fmt.Errorf("bad quantifier %q: must start with >=, >, <=, <, != or =", s)
	}
	if rest == "" {
		return Quantifier{}, fmt.Errorf("bad quantifier %q: missing value", s)
	}
	if strings.HasSuffix(rest, "%") {
		if gt || lt {
			return Quantifier{}, fmt.Errorf("bad quantifier %q: strict comparisons not supported for ratios", s)
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(rest, "%"), 64)
		if err != nil || pct <= 0 || pct > 100 {
			return Quantifier{}, fmt.Errorf("bad ratio %q: percentage must be in (0,100]", s)
		}
		return RatioPercent(op, pct), nil
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return Quantifier{}, fmt.Errorf("bad numeric quantifier %q", s)
	}
	if gt {
		return CountGT(n), nil
	}
	if lt {
		if n < 2 {
			return Quantifier{}, fmt.Errorf("bad quantifier %q: <%d is unsatisfiable or negation", s, n)
		}
		return Count(LE, n-1), nil
	}
	q := Count(op, n)
	if !q.Valid() {
		return Quantifier{}, fmt.Errorf("invalid quantifier %q", s)
	}
	return q, nil
}
