package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantifierKinds(t *testing.T) {
	cases := []struct {
		q     Quantifier
		exist bool
		neg   bool
		univ  bool
		ratio bool
		str   string
	}{
		{Exists(), true, false, false, false, ">=1"},
		{Count(GE, 3), false, false, false, false, ">=3"},
		{Count(EQ, 2), false, false, false, false, "=2"},
		{Negated(), false, true, false, false, "=0"},
		{Universal(), false, false, true, true, "=100%"},
		{RatioPercent(GE, 80), false, false, false, true, ">=80%"},
		{RatioPercent(GE, 12.5), false, false, false, true, ">=12.50%"},
		{CountGT(2), false, false, false, false, ">=3"},
	}
	for _, c := range cases {
		if got := c.q.IsExistential(); got != c.exist {
			t.Errorf("%v IsExistential = %v, want %v", c.q, got, c.exist)
		}
		if got := c.q.IsNegation(); got != c.neg {
			t.Errorf("%v IsNegation = %v, want %v", c.q, got, c.neg)
		}
		if got := c.q.IsUniversal(); got != c.univ {
			t.Errorf("%v IsUniversal = %v, want %v", c.q, got, c.univ)
		}
		if got := c.q.IsRatio(); got != c.ratio {
			t.Errorf("%v IsRatio = %v, want %v", c.q, got, c.ratio)
		}
		if got := c.q.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
		if !c.q.Valid() {
			t.Errorf("%v should be Valid", c.q)
		}
	}
}

func TestQuantifierInvalid(t *testing.T) {
	bad := []Quantifier{
		Ratio(GE, 0),
		Ratio(GE, 10001),
		Ratio(GE, -5),
		Count(GE, -1),
		Count(GE, 0), // σ(e) ≥ 0 is vacuous, excluded by syntax
	}
	for _, q := range bad {
		if q.Valid() {
			t.Errorf("%v should be invalid", q)
		}
	}
}

func TestSatisfiedNumeric(t *testing.T) {
	cases := []struct {
		q            Quantifier
		count, total int
		want         bool
	}{
		{Exists(), 0, 5, false},
		{Exists(), 1, 5, true},
		{Count(GE, 3), 2, 9, false},
		{Count(GE, 3), 3, 9, true},
		{Count(GE, 3), 4, 9, true},
		{Count(EQ, 2), 2, 9, true},
		{Count(EQ, 2), 3, 9, false},
		{Negated(), 0, 9, true},
		{Negated(), 1, 9, false},
	}
	for _, c := range cases {
		if got := c.q.Satisfied(c.count, c.total); got != c.want {
			t.Errorf("%v.Satisfied(%d,%d) = %v, want %v", c.q, c.count, c.total, got, c.want)
		}
	}
}

func TestSatisfiedRatio(t *testing.T) {
	cases := []struct {
		q            Quantifier
		count, total int
		want         bool
	}{
		{RatioPercent(GE, 80), 4, 5, true},
		{RatioPercent(GE, 80), 3, 5, false},
		{RatioPercent(GE, 80), 2, 3, false}, // 66.7% < 80%
		{RatioPercent(GE, 80), 3, 3, true},
		{Universal(), 3, 3, true},
		{Universal(), 2, 3, false},
		{RatioPercent(EQ, 50), 1, 2, true},
		{RatioPercent(EQ, 50), 2, 4, true},
		{RatioPercent(EQ, 50), 1, 3, false},
		{RatioPercent(GE, 80), 0, 0, false}, // no children: ratio unsatisfiable
	}
	for _, c := range cases {
		if got := c.q.Satisfied(c.count, c.total); got != c.want {
			t.Errorf("%v.Satisfied(%d,%d) = %v, want %v", c.q, c.count, c.total, got, c.want)
		}
	}
}

func TestThreshold(t *testing.T) {
	cases := []struct {
		q     Quantifier
		total int
		need  int
		ok    bool
	}{
		{Count(GE, 3), 10, 3, true},
		{RatioPercent(GE, 80), 5, 4, true},
		{RatioPercent(GE, 80), 3, 3, true}, // ceil(2.4) = 3, not the paper's floor
		{Universal(), 7, 7, true},
		{RatioPercent(EQ, 50), 4, 2, true},
		{RatioPercent(EQ, 50), 3, 0, false}, // 1.5 not integral → unsatisfiable
		{RatioPercent(GE, 80), 0, 0, false},
	}
	for _, c := range cases {
		need, ok := c.q.Threshold(c.total)
		if need != c.need || ok != c.ok {
			t.Errorf("%v.Threshold(%d) = (%d,%v), want (%d,%v)", c.q, c.total, need, ok, c.need, c.ok)
		}
	}
}

func TestMaxSatisfiableBelow(t *testing.T) {
	q := RatioPercent(GE, 80)
	if q.MaxSatisfiableBelow(3, 5) {
		t.Error("3 of 5 cannot reach 80%")
	}
	if !q.MaxSatisfiableBelow(4, 5) {
		t.Error("4 of 5 can reach 80%")
	}
	if Count(GE, 2).MaxSatisfiableBelow(-1, 5) {
		t.Error("negative upper must clamp to 0")
	}
}

// Property: Threshold is the exact satisfiability frontier for GE
// quantifiers — counts below it fail Satisfied, counts at/above pass.
func TestQuickThresholdFrontier(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 1 + r.Intn(50)
		var q Quantifier
		if r.Intn(2) == 0 {
			q = Count(GE, 1+r.Intn(10))
		} else {
			q = Ratio(GE, 1+r.Intn(10000))
		}
		need, ok := q.Threshold(total)
		if !ok {
			return false // GE thresholds always exist for total ≥ 1
		}
		for c := 0; c <= total; c++ {
			want := c >= need
			if q.Satisfied(c, total) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for EQ ratio quantifiers, Satisfied(c, total) holds exactly at
// the integral threshold when one exists, and never otherwise.
func TestQuickEQRatioExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 1 + r.Intn(40)
		q := Ratio(EQ, 1+r.Intn(10000))
		need, ok := q.Threshold(total)
		for c := 0; c <= total; c++ {
			want := ok && c == need
			if q.Satisfied(c, total) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseQuantifier(t *testing.T) {
	cases := []struct {
		in   string
		want Quantifier
	}{
		{">=1", Exists()},
		{">=5", Count(GE, 5)},
		{"=0", Negated()},
		{"=3", Count(EQ, 3)},
		{">2", Count(GE, 3)},
		{">=80%", RatioPercent(GE, 80)},
		{"=100%", Universal()},
		{">=12.5%", RatioPercent(GE, 12.5)},
	}
	for _, c := range cases {
		got, err := ParseQuantifier(c.in)
		if err != nil {
			t.Errorf("ParseQuantifier(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseQuantifier(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	bad := []string{"", "5", ">=", "=x", ">=0", ">=101%", "=0%", ">50%", ">=-3"}
	for _, in := range bad {
		if _, err := ParseQuantifier(in); err == nil {
			t.Errorf("ParseQuantifier(%q) succeeded, want error", in)
		}
	}
}

// Property: String/ParseQuantifier round-trip.
func TestQuickQuantifierRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Quantifier
		switch r.Intn(4) {
		case 0:
			q = Count(GE, 1+r.Intn(20))
		case 1:
			q = Count(EQ, r.Intn(20))
		case 2:
			q = Ratio(GE, 1+r.Intn(10000))
		default:
			q = Ratio(EQ, 1+r.Intn(10000))
		}
		got, err := ParseQuantifier(q.String())
		return err == nil && got == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
