package core

import (
	"sort"
	"strings"
	"testing"
)

// q3 mirrors the paper's Q3 (declared locally: core cannot import fixture).
func q3(p int) *Pattern {
	q := NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("z1", "person")
	q.AddNode("z2", "person")
	q.AddNode("redmi", "Redmi 2A")
	q.AddEdge("xo", "z1", "follow", Count(GE, p))
	q.AddEdge("z1", "redmi", "recom", Exists())
	q.AddEdge("xo", "z2", "follow", Negated())
	q.AddEdge("z2", "redmi", "bad_rating", Exists())
	return q
}

// q5 mirrors the paper's Q5 with two negated edges.
func q5() *Pattern {
	q := NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("prof", "prof")
	q.AddNode("uk", "UK")
	q.AddNode("phd", "PhD")
	q.AddNode("z", "person")
	q.AddEdge("xo", "prof", "is_a", Exists())
	q.AddEdge("prof", "uk", "in", Negated())
	q.AddEdge("xo", "z", "advisor", Exists())
	q.AddEdge("z", "prof", "is_a", Exists())
	q.AddEdge("z", "phd", "is_a", Negated())
	return q
}

func names(p *Pattern) []string {
	out := p.SortedNodeNames()
	sort.Strings(out)
	return out
}

func TestBuildAndFocus(t *testing.T) {
	p := NewPattern()
	p.AddNode("a", "person")
	p.AddNode("b", "person")
	p.AddEdge("a", "b", "follow", Exists())
	if p.FocusName() != "a" {
		t.Fatalf("default focus = %q, want a", p.FocusName())
	}
	p.SetFocus("b")
	if p.FocusName() != "b" {
		t.Fatalf("focus = %q, want b", p.FocusName())
	}
	if n, e := p.Size(); n != 2 || e != 1 {
		t.Fatalf("Size = (%d,%d), want (2,1)", n, e)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node name")
		}
	}()
	p := NewPattern()
	p.AddNode("a", "x")
	p.AddNode("a", "y")
}

func TestStratified(t *testing.T) {
	q := q3(2)
	s := q.Stratified()
	for i, e := range s.Edges {
		if !e.Q.IsExistential() {
			t.Errorf("stratified edge %d has quantifier %v", i, e.Q)
		}
	}
	// The original is untouched.
	if q.Edges[0].Q.IsExistential() {
		t.Error("Stratified mutated the original pattern")
	}
	if len(s.Edges) != len(q.Edges) || len(s.Nodes) != len(q.Nodes) {
		t.Error("Stratified changed topology")
	}
}

func TestNegatedEdges(t *testing.T) {
	q := q3(2)
	neg := q.NegatedEdges()
	if len(neg) != 1 || neg[0] != 2 {
		t.Fatalf("NegatedEdges = %v, want [2]", neg)
	}
	if q.IsPositive() {
		t.Error("q3 should be negative")
	}
	if !q.Stratified().IsPositive() {
		t.Error("stratified pattern should be positive")
	}
	if qs := q.QuantifiedEdges(); len(qs) != 1 || qs[0] != 0 {
		t.Fatalf("QuantifiedEdges = %v, want [0]", qs)
	}
}

func TestPositify(t *testing.T) {
	q := q3(2)
	pos := q.Positify(2)
	if !pos.Edges[2].Q.IsExistential() {
		t.Fatal("Positify did not make the edge existential")
	}
	if !q.Edges[2].Q.IsNegation() {
		t.Fatal("Positify mutated the original")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic positifying a non-negated edge")
		}
	}()
	q.Positify(0)
}

func TestPiQ3(t *testing.T) {
	// Figure 3: Π(Q3) = xo -follow(≥p)-> z1 -recom-> Redmi; z2 removed.
	q := q3(2)
	pi, back := q.Pi()
	want := []string{"redmi", "xo", "z1"}
	if got := names(pi); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Π(Q3) nodes = %v, want %v", got, want)
	}
	if len(pi.Edges) != 2 {
		t.Fatalf("Π(Q3) edges = %d, want 2", len(pi.Edges))
	}
	if !pi.Edges[0].Q.Satisfied(2, 5) || pi.Edges[0].Q.Satisfied(1, 5) {
		t.Error("Π(Q3) lost the ≥2 quantifier on (xo,z1)")
	}
	if pi.FocusName() != "xo" {
		t.Errorf("Π(Q3) focus = %q", pi.FocusName())
	}
	// back maps Π indexes to original indexes.
	for newIdx, oldIdx := range back {
		if pi.Nodes[newIdx].Name != q.Nodes[oldIdx].Name {
			t.Errorf("back mapping broken at %d", newIdx)
		}
	}
}

func TestPiPlusQ3(t *testing.T) {
	// Π(Q3+e) restores z2 and both of its edges.
	q := q3(2)
	pp, _ := q.PiPlus(2)
	want := []string{"redmi", "xo", "z1", "z2"}
	if got := names(pp); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Π(Q3+e) nodes = %v, want %v", got, want)
	}
	if len(pp.Edges) != 4 {
		t.Fatalf("Π(Q3+e) edges = %d, want 4", len(pp.Edges))
	}
}

func TestPiQ5(t *testing.T) {
	// Figure 3: Π(Q5) keeps xo, prof, z; removes UK and PhD.
	q := q5()
	pi, _ := q.Pi()
	want := []string{"prof", "xo", "z"}
	if got := names(pi); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Π(Q5) nodes = %v, want %v", got, want)
	}
	// Π(Q5+e1) restores UK only.
	pp1, _ := q.PiPlus(1)
	want1 := []string{"prof", "uk", "xo", "z"}
	if got := names(pp1); strings.Join(got, ",") != strings.Join(want1, ",") {
		t.Fatalf("Π(Q5+e1) nodes = %v, want %v", got, want1)
	}
	// Π(Q5+e2) restores PhD only.
	pp2, _ := q.PiPlus(4)
	want2 := []string{"phd", "prof", "xo", "z"}
	if got := names(pp2); strings.Join(got, ",") != strings.Join(want2, ",") {
		t.Fatalf("Π(Q5+e2) nodes = %v, want %v", got, want2)
	}
}

func TestPiPositiveIsIdentity(t *testing.T) {
	p := NewPattern()
	p.AddNode("a", "x")
	p.AddNode("b", "y")
	p.AddNode("c", "z")
	p.AddEdge("a", "b", "r", RatioPercent(GE, 50))
	p.AddEdge("c", "b", "s", Exists()) // mixed direction: b has in-edges from both
	pi, back := p.Pi()
	if len(pi.Nodes) != 3 || len(pi.Edges) != 2 {
		t.Fatalf("Π of positive pattern changed shape: %d nodes %d edges", len(pi.Nodes), len(pi.Edges))
	}
	for i := range back {
		if back[i] != i {
			t.Fatalf("identity mapping expected, got %v", back)
		}
	}
}

func TestRadius(t *testing.T) {
	q := q3(2)
	if r := q.Radius(); r != 2 {
		t.Fatalf("Radius(Q3) = %d, want 2", r)
	}
	p := NewPattern()
	p.AddNode("a", "x")
	if r := p.Radius(); r != 0 {
		t.Fatalf("Radius(single node) = %d, want 0", r)
	}
}

func TestConnected(t *testing.T) {
	p := NewPattern()
	p.AddNode("a", "x")
	p.AddNode("b", "y")
	if p.Connected() {
		t.Error("two isolated nodes reported connected")
	}
	p.AddEdge("a", "b", "r", Exists())
	if !p.Connected() {
		t.Error("connected pattern reported disconnected")
	}
}

func TestValidateAcceptsPaperPatterns(t *testing.T) {
	for name, p := range map[string]*Pattern{"Q3": q3(2), "Q5": q5()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s should validate: %v", name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	empty := NewPattern()
	if err := empty.Validate(); err == nil {
		t.Error("empty pattern validated")
	}

	disc := NewPattern()
	disc.AddNode("a", "x")
	disc.AddNode("b", "y")
	if err := disc.Validate(); err == nil {
		t.Error("disconnected pattern validated")
	}

	selfLoop := NewPattern()
	selfLoop.AddNode("a", "x")
	selfLoop.Edges = append(selfLoop.Edges, PEdge{From: 0, To: 0, Label: "r", Q: Exists()})
	if err := selfLoop.Validate(); err == nil {
		t.Error("self-loop validated")
	}

	badQ := NewPattern()
	badQ.AddNode("a", "x")
	badQ.AddNode("b", "y")
	badQ.Edges = append(badQ.Edges, PEdge{From: 0, To: 1, Label: "r", Q: Ratio(GE, 0)})
	if err := badQ.Validate(); err == nil {
		t.Error("invalid quantifier validated")
	}

	// Double negation on one focus-anchored path.
	dn := NewPattern()
	dn.AddNode("xo", "x")
	dn.AddNode("a", "y")
	dn.AddNode("b", "z")
	dn.AddEdge("xo", "a", "r", Negated())
	dn.AddEdge("a", "b", "s", Negated())
	if err := dn.Validate(); err == nil {
		t.Error("double negation validated")
	}

	// Too many quantifiers on one path (l = 2).
	chain := NewPattern()
	chain.AddNode("xo", "x")
	chain.AddNode("a", "y")
	chain.AddNode("b", "z")
	chain.AddNode("c", "w")
	chain.AddEdge("xo", "a", "r", Count(GE, 2))
	chain.AddEdge("a", "b", "r", Count(GE, 2))
	chain.AddEdge("b", "c", "r", Count(GE, 2))
	if err := chain.Validate(); err == nil {
		t.Error("3 quantifiers on a path validated with l=2")
	}
	if err := chain.ValidateL(3); err != nil {
		t.Errorf("3 quantifiers should validate with l=3: %v", err)
	}
}

func TestDSLRoundTrip(t *testing.T) {
	for _, p := range []*Pattern{q3(2), q5()} {
		text := p.String()
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(String()) failed: %v\n%s", err, text)
		}
		if got.String() != text {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", text, got.String())
		}
	}
}

func TestParseDSL(t *testing.T) {
	p, err := Parse(`
# a comment
qgp
n xo person *
n z person
n r album
e xo z follow >=80%
e z r like
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.FocusName() != "xo" {
		t.Errorf("focus = %q", p.FocusName())
	}
	if len(p.Nodes) != 3 || len(p.Edges) != 2 {
		t.Fatalf("parsed %d nodes %d edges", len(p.Nodes), len(p.Edges))
	}
	if p.Edges[0].Q != RatioPercent(GE, 80) {
		t.Errorf("edge 0 quantifier = %v", p.Edges[0].Q)
	}
	if !p.Edges[1].Q.IsExistential() {
		t.Errorf("edge 1 quantifier = %v", p.Edges[1].Q)
	}
}

func TestParseDSLErrors(t *testing.T) {
	bad := []string{
		"",                               // no header
		"n a x",                          // node before header
		"qgp\nn a",                       // short node line
		"qgp\nn a x\nn a y",              // duplicate node
		"qgp\nn a x +",                   // bad focus marker
		"qgp\nn a x *\nn b y *",          // two focus markers
		"qgp\nn a x\ne a b r",            // unknown node b
		"qgp\nn a x\nn b y\ne a b r =0%", // bad quantifier
		"qgp\nn a x\nn b y\ne a b",       // short edge line
		"qgp\nn a x\nn b y\nz",           // unknown record
		"qgp\nn a x\nn b y",              // disconnected (validation)
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}
