// Package core implements the quantified graph pattern (QGP) model of
// Fan, Wu and Xu, "Adding Counting Quantifiers to Graph Patterns"
// (SIGMOD 2016): counting quantifiers on pattern edges, the stratified
// pattern Qπ, the negation-free projection Π(Q), positified patterns Q+e,
// pattern well-formedness (the l-restriction and single-negation rule),
// and a small textual DSL for patterns.
package core

import "fmt"

// Op is the comparison operator of a counting quantifier. The paper's
// core syntax uses ⊙ ∈ {=, ≥} and normalizes > p to ≥ p+1; the ≤ and ≠
// operators are the extension its §8 leaves to future work — they make
// matching DP-hard like negation (Remark, §3) and are supported here with
// the same exact-counting machinery as =.
type Op uint8

const (
	// GE is the ≥ operator.
	GE Op = iota
	// EQ is the = operator.
	EQ
	// LE is the ≤ operator (extension).
	LE
	// NE is the ≠ operator (extension).
	NE
)

func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case LE:
		return "<="
	case NE:
		return "!="
	default:
		return ">="
	}
}

// Quantifier is a counting quantifier f(e) on a pattern edge. It is either
// numeric (σ(e) ⊙ n) or a ratio (σ(e) ⊙ p%). Ratios are stored in basis
// points (1% = 100 bp) so that equality checks stay exact in integer
// arithmetic. The zero value is the existential quantifier σ(e) ≥ 1.
type Quantifier struct {
	op    Op
	ratio bool
	n     int // numeric threshold when !ratio
	bp    int // ratio in basis points (0, 10000] when ratio
}

// Exists returns the existential quantifier σ(e) ≥ 1, the implicit
// quantifier of conventional pattern edges.
func Exists() Quantifier { return Quantifier{op: GE, n: 1} }

// Count returns the numeric quantifier σ(e) ⊙ n. Count(EQ, 0) is the
// negation quantifier.
func Count(op Op, n int) Quantifier { return Quantifier{op: op, n: n} }

// CountGT returns σ(e) > n, normalized to σ(e) ≥ n+1 (§4.1).
func CountGT(n int) Quantifier { return Quantifier{op: GE, n: n + 1} }

// Negated returns the negation quantifier σ(e) = 0.
func Negated() Quantifier { return Quantifier{op: EQ, n: 0} }

// Ratio returns the ratio quantifier σ(e) ⊙ bp/100 %, with bp in basis
// points (1..10000]. RatioPercent is the float convenience form.
func Ratio(op Op, bp int) Quantifier { return Quantifier{op: op, ratio: true, bp: bp} }

// RatioPercent returns σ(e) ⊙ p% for a percentage p in (0, 100].
func RatioPercent(op Op, p float64) Quantifier {
	return Ratio(op, int(p*100+0.5))
}

// Universal returns the universal quantifier σ(e) = 100%.
func Universal() Quantifier { return Ratio(EQ, 10000) }

// Op returns the comparison operator.
func (q Quantifier) Op() Op { return q.op }

// IsRatio reports whether q is a ratio aggregate.
func (q Quantifier) IsRatio() bool { return q.ratio }

// N returns the numeric threshold (meaningful when !IsRatio()).
func (q Quantifier) N() int { return q.n }

// BasisPoints returns the ratio in basis points (meaningful when IsRatio()).
func (q Quantifier) BasisPoints() int { return q.bp }

// IsExistential reports whether q is σ(e) ≥ 1, i.e. a conventional edge.
func (q Quantifier) IsExistential() bool { return !q.ratio && q.op == GE && q.n == 1 }

// IsNegation reports whether q is σ(e) = 0.
func (q Quantifier) IsNegation() bool { return !q.ratio && q.op == EQ && q.n == 0 }

// IsUniversal reports whether q is σ(e) = 100%.
func (q Quantifier) IsUniversal() bool { return q.ratio && q.op == EQ && q.bp == 10000 }

// Valid reports whether q is well formed: ratio in (0, 10000] bp, numeric
// threshold ≥ 0 (with = 0 only as negation, which is valid). σ(e) ≥ 0 is
// vacuous and σ(e) ≤ 0 must be written as the negation =0, so both are
// rejected.
func (q Quantifier) Valid() bool {
	if q.ratio {
		return q.bp > 0 && q.bp <= 10000
	}
	if q.n < 0 {
		return false
	}
	if (q.op == GE || q.op == LE) && q.n == 0 {
		return false
	}
	return true
}

// Satisfied reports whether a count of matching children out of total
// children satisfies q. For ratio quantifiers total is |Me(v)| and count is
// |Me(vx, v, Q)|; comparisons are exact in integer arithmetic.
func (q Quantifier) Satisfied(count, total int) bool {
	if q.ratio {
		if total <= 0 {
			return false
		}
		lhs, rhs := count*10000, q.bp*total
		switch q.op {
		case GE:
			return lhs >= rhs
		case EQ:
			return lhs == rhs
		case LE:
			return lhs <= rhs
		default: // NE
			return lhs != rhs
		}
	}
	switch q.op {
	case GE:
		return count >= q.n
	case EQ:
		return count == q.n
	case LE:
		return count <= q.n
	default: // NE
		return count != q.n
	}
}

// Threshold converts q at a node with total children into a numeric lower
// bound: the minimum count that can still satisfy q (a quantified pattern
// edge always embeds at least one child, so the minimum is clamped to 1
// for the non-monotone operators). It returns (0, false) when q is
// unsatisfiable at this node — an EQ ratio whose exact count is not
// integral, or an LE ratio that excludes even a single child. This is the
// per-candidate ratio→numeric conversion of §4.1 — using a ceiling for GE
// rather than the paper's floor, which would under-approximate (see
// DESIGN.md §2).
func (q Quantifier) Threshold(total int) (need int, ok bool) {
	if !q.ratio {
		switch q.op {
		case GE, EQ:
			return q.n, true
		case LE:
			if q.n < 1 {
				return 0, false
			}
			return 1, true
		default: // NE
			if q.n == 1 {
				return 2, true // a single embedded child would hit = 1
			}
			return 1, true
		}
	}
	if total <= 0 {
		return 0, false
	}
	prod := q.bp * total
	switch q.op {
	case GE:
		return (prod + 9999) / 10000, true
	case EQ:
		if prod%10000 != 0 {
			return 0, false
		}
		return prod / 10000, true
	case LE:
		if prod < 10000 { // even one child exceeds the cap
			return 0, false
		}
		return 1, true
	default: // NE
		if prod == 10000 {
			return 2, true // one child would hit equality exactly
		}
		return 1, true
	}
}

// MaxSatisfiableBelow reports whether q could still be satisfied when at
// most upper of the total children can match. It is the pruning test on
// upper bounds U(v, e) used by DMatch.
func (q Quantifier) MaxSatisfiableBelow(upper, total int) bool {
	if upper < 0 {
		upper = 0
	}
	need, ok := q.Threshold(total)
	if !ok {
		return false
	}
	return upper >= need
}

func (q Quantifier) String() string {
	if q.ratio {
		if q.bp%100 == 0 {
			return fmt.Sprintf("%s%d%%", q.op, q.bp/100)
		}
		return fmt.Sprintf("%s%d.%02d%%", q.op, q.bp/100, q.bp%100)
	}
	return fmt.Sprintf("%s%d", q.op, q.n)
}
