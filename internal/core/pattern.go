package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/scan"
)

// PNode is a pattern node: a human-readable name (unique within the
// pattern) and a node label that graph nodes must carry.
type PNode struct {
	Name  string
	Label string
}

// PEdge is a pattern edge from node index From to node index To, carrying
// an edge label and a counting quantifier.
type PEdge struct {
	From, To int
	Label    string
	Q        Quantifier
}

// IsNegated reports whether the edge carries σ(e) = 0.
func (e PEdge) IsNegated() bool { return e.Q.IsNegation() }

// Pattern is a quantified graph pattern Q(xo) = (VQ, EQ, LQ, f) with a
// designated query focus xo. Build one with NewPattern + AddNode/AddEdge,
// or parse the DSL with Parse. Patterns are immutable once handed to the
// matching algorithms.
type Pattern struct {
	Nodes []PNode
	Edges []PEdge
	Focus int // index into Nodes

	byName map[string]int
}

// NewPattern returns an empty pattern. The first node added becomes the
// focus unless SetFocus is called.
func NewPattern() *Pattern {
	return &Pattern{Focus: -1, byName: make(map[string]int)}
}

// AddNode adds a named, labeled pattern node and returns its index. Adding
// a duplicate name panics: pattern construction errors are programming
// errors, not runtime conditions.
func (p *Pattern) AddNode(name, label string) int {
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("core: duplicate pattern node %q", name))
	}
	idx := len(p.Nodes)
	p.Nodes = append(p.Nodes, PNode{Name: name, Label: label})
	p.byName[name] = idx
	if p.Focus < 0 {
		p.Focus = idx
	}
	return idx
}

// SetFocus marks the node with the given name as the query focus xo.
func (p *Pattern) SetFocus(name string) {
	idx, ok := p.byName[name]
	if !ok {
		panic(fmt.Sprintf("core: unknown focus node %q", name))
	}
	p.Focus = idx
}

// NodeIndex returns the index of the named node and whether it exists.
func (p *Pattern) NodeIndex(name string) (int, bool) {
	idx, ok := p.byName[name]
	return idx, ok
}

// AddEdge adds an edge between named nodes with an edge label and
// quantifier, returning the edge index.
func (p *Pattern) AddEdge(from, to, label string, q Quantifier) int {
	fi, ok := p.byName[from]
	if !ok {
		panic(fmt.Sprintf("core: unknown pattern node %q", from))
	}
	ti, ok := p.byName[to]
	if !ok {
		panic(fmt.Sprintf("core: unknown pattern node %q", to))
	}
	p.Edges = append(p.Edges, PEdge{From: fi, To: ti, Label: label, Q: q})
	return len(p.Edges) - 1
}

// FocusName returns the name of the focus node.
func (p *Pattern) FocusName() string { return p.Nodes[p.Focus].Name }

// IsPositive reports whether the pattern has no negated edges.
func (p *Pattern) IsPositive() bool { return len(p.NegatedEdges()) == 0 }

// NegatedEdges returns the indexes of edges with σ(e) = 0 (E−Q).
func (p *Pattern) NegatedEdges() []int {
	var neg []int
	for i, e := range p.Edges {
		if e.IsNegated() {
			neg = append(neg, i)
		}
	}
	return neg
}

// QuantifiedEdges returns the indexes of edges with non-existential,
// non-negated quantifiers.
func (p *Pattern) QuantifiedEdges() []int {
	var qs []int
	for i, e := range p.Edges {
		if !e.Q.IsExistential() && !e.IsNegated() {
			qs = append(qs, i)
		}
	}
	return qs
}

// clone returns a deep copy of p.
func (p *Pattern) clone() *Pattern {
	q := NewPattern()
	for _, n := range p.Nodes {
		q.AddNode(n.Name, n.Label)
	}
	q.Focus = p.Focus
	q.Edges = append([]PEdge(nil), p.Edges...)
	return q
}

// Stratified returns Qπ: the same topology with every quantifier replaced
// by the existential quantifier.
func (p *Pattern) Stratified() *Pattern {
	q := p.clone()
	for i := range q.Edges {
		q.Edges[i].Q = Exists()
	}
	return q
}

// Positify returns Q+e: a copy with negated edge e changed to σ(e) ≥ 1.
// It panics if edge e is not negated.
func (p *Pattern) Positify(e int) *Pattern {
	if !p.Edges[e].IsNegated() {
		panic("core: Positify on a non-negated edge")
	}
	q := p.clone()
	q.Edges[e].Q = Exists()
	return q
}

// Pi returns Π(Q): the negation-free projection of Q. Negated edges are
// removed together with their "far" endpoint (the endpoint at greater
// undirected distance from the focus — the node that exists only to state
// the negated condition, e.g. z2 in the paper's Q3 or UK/PhD in Q5), and
// the pattern is restricted to the connected component of the focus. The
// second result maps Π(Q) node indexes back to indexes in p.
//
// The paper's prose definition ("nodes connected to xo with non-negated
// edges") is ambiguous for DAG-shaped patterns; this rule reproduces
// Figure 3 of the paper exactly on Q3, Q4 and Q5 (see DESIGN.md §2).
func (p *Pattern) Pi() (*Pattern, []int) {
	keep := p.piKeepSet()
	pi := NewPattern()
	oldToNew := make([]int, len(p.Nodes))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	var newToOld []int
	for i, n := range p.Nodes {
		if keep[i] {
			oldToNew[i] = pi.AddNode(n.Name, n.Label)
			newToOld = append(newToOld, i)
		}
	}
	pi.Focus = oldToNew[p.Focus]
	for _, e := range p.Edges {
		if e.IsNegated() {
			continue
		}
		if keep[e.From] && keep[e.To] {
			pi.Edges = append(pi.Edges, PEdge{
				From: oldToNew[e.From], To: oldToNew[e.To], Label: e.Label, Q: e.Q,
			})
		}
	}
	return pi, newToOld
}

// PiPlus returns Π(Q+e) for negated edge e: the negation-free projection
// of the positified pattern, with the index mapping back to p.
func (p *Pattern) PiPlus(e int) (*Pattern, []int) {
	return p.Positify(e).Pi()
}

// piKeepSet computes the node set of Π(Q): all nodes except the far
// endpoints of negated edges, restricted to the focus component after
// negated edges and far endpoints are removed.
func (p *Pattern) piKeepSet() []bool {
	dist := p.undirectedDistances()
	tainted := make([]bool, len(p.Nodes))
	for _, e := range p.Edges {
		if !e.IsNegated() {
			continue
		}
		far := e.To
		if dist[e.From] > dist[e.To] {
			far = e.From
		}
		if far != p.Focus {
			tainted[far] = true
		}
	}
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		if e.IsNegated() || tainted[e.From] || tainted[e.To] {
			continue
		}
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	keep := make([]bool, len(p.Nodes))
	stack := []int{p.Focus}
	keep[p.Focus] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !keep[v] {
				keep[v] = true
				stack = append(stack, v)
			}
		}
	}
	return keep
}

// undirectedDistances returns BFS hop distances from the focus over all
// edges (negated included), ignoring direction. Unreachable nodes get a
// distance larger than any reachable one.
func (p *Pattern) undirectedDistances() []int {
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	dist := make([]int, len(p.Nodes))
	for i := range dist {
		dist[i] = len(p.Nodes) + 1
	}
	dist[p.Focus] = 0
	queue := []int{p.Focus}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] > dist[u]+1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Radius returns the longest shortest undirected distance from the focus
// to any pattern node (§5.2). Unreachable nodes (possible only through a
// malformed pattern) are ignored.
func (p *Pattern) Radius() int {
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	dist := make([]int, len(p.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[p.Focus] = 0
	queue := []int{p.Focus}
	radius := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > radius {
					radius = dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return radius
}

// OutEdges returns the indexes of edges leaving pattern node u.
func (p *Pattern) OutEdges(u int) []int {
	var es []int
	for i, e := range p.Edges {
		if e.From == u {
			es = append(es, i)
		}
	}
	return es
}

// Connected reports whether the pattern is connected, treating edges as
// undirected (negated edges included; a QGP must be connected as a whole).
func (p *Pattern) Connected() bool {
	if len(p.Nodes) == 0 {
		return false
	}
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, len(p.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(p.Nodes)
}

// Size returns (|VQ|, |EQ|).
func (p *Pattern) Size() (nodes, edges int) { return len(p.Nodes), len(p.Edges) }

// String renders the pattern in the DSL accepted by Parse.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("qgp\n")
	for i, n := range p.Nodes {
		fmt.Fprintf(&b, "n %s %s", scan.Quote(n.Name), scan.Quote(n.Label))
		if i == p.Focus {
			b.WriteString(" *")
		}
		b.WriteByte('\n')
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "e %s %s %s", scan.Quote(p.Nodes[e.From].Name), scan.Quote(p.Nodes[e.To].Name), scan.Quote(e.Label))
		if !e.Q.IsExistential() {
			fmt.Fprintf(&b, " %s", e.Q)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedNodeNames returns the node names in sorted order (testing helper).
func (p *Pattern) SortedNodeNames() []string {
	names := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}
