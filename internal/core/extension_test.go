package core

import "testing"

// Tests for the ≤ / ≠ quantifier extension (the paper's §8 future work).

func TestLEQuantifier(t *testing.T) {
	q := Count(LE, 2)
	cases := []struct {
		count int
		want  bool
	}{{0, true}, {1, true}, {2, true}, {3, false}}
	for _, c := range cases {
		if got := q.Satisfied(c.count, 10); got != c.want {
			t.Errorf("<=2 Satisfied(%d) = %v, want %v", c.count, got, c.want)
		}
	}
	if q.String() != "<=2" {
		t.Errorf("String = %q", q.String())
	}
	if need, ok := q.Threshold(10); !ok || need != 1 {
		t.Errorf("Threshold = (%d,%v), want (1,true)", need, ok)
	}
	if Count(LE, 0).Valid() {
		t.Error("<=0 must be invalid (write =0 for negation)")
	}
}

func TestNEQuantifier(t *testing.T) {
	q := Count(NE, 2)
	cases := []struct {
		count int
		want  bool
	}{{0, true}, {1, true}, {2, false}, {3, true}}
	for _, c := range cases {
		if got := q.Satisfied(c.count, 10); got != c.want {
			t.Errorf("!=2 Satisfied(%d) = %v, want %v", c.count, got, c.want)
		}
	}
	if q.String() != "!=2" {
		t.Errorf("String = %q", q.String())
	}
	if need, ok := Count(NE, 1).Threshold(10); !ok || need != 2 {
		t.Errorf("!=1 Threshold = (%d,%v), want (2,true)", need, ok)
	}
}

func TestLERatio(t *testing.T) {
	q := RatioPercent(LE, 50)
	if !q.Satisfied(1, 4) || !q.Satisfied(2, 4) || q.Satisfied(3, 4) {
		t.Error("<=50% over 4 children broken")
	}
	// One child out of one is 100% — no count can satisfy <= 50%.
	if _, ok := q.Threshold(1); ok {
		t.Error("<=50% with total=1 should be unsatisfiable")
	}
	if need, ok := q.Threshold(4); !ok || need != 1 {
		t.Errorf("Threshold(4) = (%d,%v)", need, ok)
	}
}

func TestNERatio(t *testing.T) {
	q := RatioPercent(NE, 50)
	if q.Satisfied(2, 4) || !q.Satisfied(1, 4) || !q.Satisfied(3, 4) {
		t.Error("!=50% over 4 children broken")
	}
	// bp*total = 10000 exactly: a single child hits equality, so min is 2.
	if need, ok := Ratio(NE, 5000).Threshold(2); !ok || need != 2 {
		t.Errorf("!=50%% Threshold(2) = (%d,%v), want (2,true)", need, ok)
	}
}

func TestParseExtensionTokens(t *testing.T) {
	cases := map[string]Quantifier{
		"<=3":   Count(LE, 3),
		"<3":    Count(LE, 2),
		"!=2":   Count(NE, 2),
		"<=40%": RatioPercent(LE, 40),
		"!=50%": RatioPercent(NE, 50),
	}
	for in, want := range cases {
		got, err := ParseQuantifier(in)
		if err != nil {
			t.Errorf("ParseQuantifier(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseQuantifier(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"<=0", "<1", "<0", "<=-1", "<50%"} {
		if _, err := ParseQuantifier(in); err == nil {
			t.Errorf("ParseQuantifier(%q) succeeded, want error", in)
		}
	}
	// Round trip through String.
	for _, q := range []Quantifier{Count(LE, 3), Count(NE, 2), Ratio(LE, 4000), Ratio(NE, 5000)} {
		got, err := ParseQuantifier(q.String())
		if err != nil || got != q {
			t.Errorf("round trip %v failed: %v %v", q, got, err)
		}
	}
}

func TestExtensionOnPath(t *testing.T) {
	// LE/NE count toward the l-restriction like any non-existential
	// quantifier.
	p := NewPattern()
	p.AddNode("xo", "x")
	p.AddNode("a", "y")
	p.AddNode("b", "z")
	p.AddNode("c", "w")
	p.AddEdge("xo", "a", "r", Count(LE, 2))
	p.AddEdge("a", "b", "r", Count(NE, 1))
	p.AddEdge("b", "c", "r", Count(GE, 2))
	if err := p.Validate(); err == nil {
		t.Error("3 non-existential quantifiers on one path validated with l=2")
	}
}
