package core

import (
	"errors"
	"fmt"
)

// DefaultMaxQuantifiersPerPath is the paper's predefined constant l: the
// empirical study it cites finds real-world queries need l ≤ 2.
const DefaultMaxQuantifiersPerPath = 2

// ErrInvalidPattern wraps all pattern validation failures.
var ErrInvalidPattern = errors.New("invalid quantified graph pattern")

// Validate checks the well-formedness rules of §2.2 with the default l.
func (p *Pattern) Validate() error {
	return p.ValidateL(DefaultMaxQuantifiersPerPath)
}

// ValidateL checks that the pattern is a well-formed QGP:
//
//   - it has at least one node and a designated focus,
//   - node names are unique and labels non-empty,
//   - it is connected,
//   - every quantifier is syntactically valid,
//   - on every simple (cycle-free, undirected) path starting at the focus
//     there are at most l non-existential quantifiers and at most one
//     negated edge (the paper's restriction excluding FO-hard patterns and
//     double negation; paths are anchored at xo — the paper's own Q5 has
//     two negated edges that share an undirected path but lie on different
//     focus-anchored branches).
func (p *Pattern) ValidateL(l int) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrInvalidPattern)
	}
	if p.Focus < 0 || p.Focus >= len(p.Nodes) {
		return fmt.Errorf("%w: focus out of range", ErrInvalidPattern)
	}
	for i, n := range p.Nodes {
		if n.Label == "" {
			return fmt.Errorf("%w: node %q has empty label", ErrInvalidPattern, n.Name)
		}
		if n.Name == "" {
			return fmt.Errorf("%w: node %d has empty name", ErrInvalidPattern, i)
		}
	}
	for i, e := range p.Edges {
		if e.Label == "" {
			return fmt.Errorf("%w: edge %d has empty label", ErrInvalidPattern, i)
		}
		if !e.Q.Valid() {
			return fmt.Errorf("%w: edge %d has invalid quantifier %v", ErrInvalidPattern, i, e.Q)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: edge %d is a self-loop", ErrInvalidPattern, i)
		}
	}
	if !p.Connected() {
		return fmt.Errorf("%w: pattern is not connected", ErrInvalidPattern)
	}
	if quants, negs := p.maxOnSimplePath(); quants > l || negs > 1 {
		if negs > 1 {
			return fmt.Errorf("%w: a simple path carries %d negated edges (max 1: no double negation)",
				ErrInvalidPattern, negs)
		}
		return fmt.Errorf("%w: a simple path carries %d non-existential quantifiers (max l=%d)",
			ErrInvalidPattern, quants, l)
	}
	return nil
}

// maxOnSimplePath enumerates all simple undirected paths starting at the
// focus (patterns are small, ≤ ~12 nodes in all realistic workloads) and
// returns the maximum number of non-existential quantifiers and negated
// edges on any of them.
func (p *Pattern) maxOnSimplePath() (maxQuants, maxNegs int) {
	type halfEdge struct {
		to   int
		edge int
	}
	adj := make([][]halfEdge, len(p.Nodes))
	for i, e := range p.Edges {
		adj[e.From] = append(adj[e.From], halfEdge{e.To, i})
		adj[e.To] = append(adj[e.To], halfEdge{e.From, i})
	}
	visited := make([]bool, len(p.Nodes))
	usedEdge := make([]bool, len(p.Edges))

	var dfs func(u, quants, negs int)
	dfs = func(u, quants, negs int) {
		if quants > maxQuants {
			maxQuants = quants
		}
		if negs > maxNegs {
			maxNegs = negs
		}
		for _, he := range adj[u] {
			if visited[he.to] || usedEdge[he.edge] {
				continue
			}
			e := p.Edges[he.edge]
			dq, dn := 0, 0
			if e.IsNegated() {
				dn = 1
				dq = 1
			} else if !e.Q.IsExistential() {
				dq = 1
			}
			visited[he.to] = true
			usedEdge[he.edge] = true
			dfs(he.to, quants+dq, negs+dn)
			visited[he.to] = false
			usedEdge[he.edge] = false
		}
	}
	visited[p.Focus] = true
	dfs(p.Focus, 0, 0)
	visited[p.Focus] = false
	return maxQuants, maxNegs
}
