package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// BenchmarkUpdateThroughput measures sustained incremental-maintenance
// throughput: with a FIXED set of standing watches, how many multi-op
// update batches per second can the system absorb while keeping every
// watch's answer set current? Unlike BenchmarkClusterUpdate (latency of
// one minimal batch), each iteration here is a 8-op batch mixing edge
// churn with periodic node add/remove, so the number reflects steady
// write pressure rather than round-trip overhead. The reported
// batches_per_sec values are the headline: they scale with the versioned
// core's |batch| + |affected region| cost, not with |G|. Run with
// QGP_BENCH_RECORD=1 to refresh BENCH_update_throughput.json:
//
//	QGP_BENCH_RECORD=1 go test -run '^$' -bench BenchmarkUpdateThroughput .
func BenchmarkUpdateThroughput(b *testing.B) {
	const graphSize = 2000
	const opsPerBatch = 8
	g := gen.Social(gen.DefaultSocial(graphSize, 42))
	patterns := []string{
		"qgp\nn xo person *\nn z person\ne xo z follow >=3\n",
		"qgp\nn xo person *\nn z person\nn p product\ne xo z follow >=1\ne z p bad_rating =0\n",
	}
	qs := make([]*core.Pattern, len(patterns))
	for i, dsl := range patterns {
		q, err := core.Parse(dsl)
		if err != nil {
			b.Fatal(err)
		}
		qs[i] = q
	}

	// Batch i: opsPerBatch edge ops walking a pseudo-random schedule;
	// every op at slot 2k+1 removes the edge slot 2k added, so the graph
	// stays bounded over arbitrarily many iterations. Every 16th batch
	// additionally churns one node: add a fresh person, then tombstone it
	// on the following multiple of 16 — node count grows slowly (the
	// tombstone keeps the slot) but edge mass stays flat.
	batchFor := func(i int) []server.UpdateSpec {
		specs := make([]server.UpdateSpec, 0, opsPerBatch+1)
		for j := 0; j < opsPerBatch; j++ {
			s := i*opsPerBatch + j
			k := s / 2
			from := int64((k*7919 + 13) % graphSize)
			to := int64((k*104729 + 31) % graphSize)
			if from == to {
				to = (to + 1) % graphSize
			}
			op := "addEdge"
			if s%2 == 1 {
				op = "removeEdge"
			}
			specs = append(specs, server.UpdateSpec{Op: op, From: from, To: to, Label: "follow"})
		}
		if i%16 == 0 {
			specs = append(specs, server.UpdateSpec{Op: "addNode", Label: "person"})
		} else if i%16 == 8 {
			specs = append(specs, server.UpdateSpec{Op: "removeNode", From: int64((i/16)%graphSize) + 100})
		}
		return specs
	}

	record := map[string]interface{}{
		"benchmark":     "BenchmarkUpdateThroughput",
		"graph":         fmt.Sprintf("social n=%d seed=42", graphSize),
		"ops_per_batch": opsPerBatch,
		"watches":       len(patterns),
	}
	perSec := func(ns int64) float64 {
		if ns <= 0 {
			return 0
		}
		return 1e9 / float64(ns)
	}

	// Single process: one versioned core shared by all standing watches —
	// the batch is applied once and each matcher re-verifies its own
	// affected candidates via ApplyShared.
	b.Run("single", func(b *testing.B) {
		vg := graph.NewVersioned(gen.Social(gen.DefaultSocial(graphSize, 42)))
		ms := make([]*dynamic.Matcher, len(qs))
		for i, q := range qs {
			m, err := dynamic.NewMatcher(vg.Graph(), q)
			if err != nil {
				b.Fatal(err)
			}
			ms[i] = m
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ups, err := server.ToUpdates(batchFor(i))
			if err != nil {
				b.Fatal(err)
			}
			old, touched, err := dynamic.ApplyVersioned(vg, ups)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range ms {
				if _, err := m.ApplyShared(old, vg.Graph(), touched); err != nil {
					b.Fatal(err)
				}
			}
		}
		ns := avgNs(b)
		record["single_ns_per_batch"] = ns
		record["single_batches_per_sec"] = perSec(ns)
	})

	for _, workers := range []int{2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts := cluster.InProcessN(workers, server.Config{})
			c, err := cluster.New(g, ts, cluster.Config{D: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			for i, q := range qs {
				if _, err := c.Watch(fmt.Sprintf("w%d", i), q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Update(batchFor(i)); err != nil {
					b.Fatal(err)
				}
			}
			ns := avgNs(b)
			record[fmt.Sprintf("cluster%d_ns_per_batch", workers)] = ns
			record[fmt.Sprintf("cluster%d_batches_per_sec", workers)] = perSec(ns)
		})
	}

	// Instrumentation overhead: the same workers=2 workload with every
	// batch profiled (per-stage timings on the coordinator, the profile
	// command on the workers). The acceptance bar is that
	// profile_overhead stays within a few percent of the plain
	// workers=2 number — profiling is cheap enough to leave on.
	b.Run("workers=2,profile", func(b *testing.B) {
		ts := cluster.InProcessN(2, server.Config{})
		c, err := cluster.New(g, ts, cluster.Config{D: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		for i, q := range qs {
			if _, err := c.Watch(fmt.Sprintf("w%d", i), q); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.UpdateProfiled(batchFor(i)); err != nil {
				b.Fatal(err)
			}
		}
		ns := avgNs(b)
		record["cluster2_profiled_ns_per_batch"] = ns
		record["cluster2_profiled_batches_per_sec"] = perSec(ns)
		if base, ok := record["cluster2_ns_per_batch"].(int64); ok && base > 0 {
			record["profile_overhead"] = float64(ns-base) / float64(base)
		}
	})

	if os.Getenv("QGP_BENCH_RECORD") != "" {
		b.StopTimer()
		f, err := os.Create("BENCH_update_throughput.json")
		if err != nil {
			b.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(record); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote BENCH_update_throughput.json")
	}
}
