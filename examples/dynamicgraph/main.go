// Dynamic graph maintenance: keep a quantified pattern's answer set live
// while the graph changes, re-verifying only the affected region (§5.2
// Remark), and persist the mutation history in a crash-safe store so the
// whole session can be replayed after a restart.
//
// The scenario is social-media marketing: "people who bought at least two
// products" is maintained while follows, purchases and new users stream
// in; every batch is journaled to disk.
//
// Run with: go run ./examples/dynamicgraph
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "qgp-dynamic-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A disk-backed store holds the ground truth...
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// ...seeded with three people and two products.
	if _, err := st.Apply(
		store.AddNode("person"), store.AddNode("person"), store.AddNode("person"),
		store.AddNode("product"), store.AddNode("product"),
		store.AddEdge(0, 3, "buy"), // person 0 bought one product
	); err != nil {
		log.Fatal(err)
	}

	// The live pattern: buyers of ≥ 2 products.
	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("y", "product")
	q.AddEdge("xo", "y", "buy", core.Count(core.GE, 2))

	m, err := dynamic.NewMatcher(st.Graph(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial answers: %v (person 0 has only 1 purchase)\n", m.Answers())

	// Stream update batches: journal to the store, maintain the matcher.
	batches := [][]dynamic.Update{
		{store.AddEdge(0, 4, "buy")},                             // person 0's second purchase
		{store.AddEdge(1, 3, "buy"), store.AddEdge(1, 4, "buy")}, // person 1 buys both
		{store.RemoveEdge(0, 3, "buy")},                          // person 0 returns one
		{store.AddNode("person"), store.AddEdge(5, 3, "buy"), store.AddEdge(5, 4, "buy")},
	}
	for i, batch := range batches {
		if _, err := st.Apply(batch...); err != nil {
			log.Fatal(err)
		}
		delta, err := m.Apply(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: +%v -%v (re-verified %d of %d nodes) -> %v\n",
			i+1, delta.Added, delta.Removed, delta.Affected, m.Graph().NumNodes(), m.Answers())
	}

	// The matcher agrees with recomputation from scratch...
	check, err := match.QMatch(m.Graph(), q, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !equal(m.Answers(), check.Matches) {
		log.Fatalf("incremental %v != recompute %v", m.Answers(), check.Matches)
	}

	// ...and with a cold restart from the journaled store.
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	replayed, err := match.QMatch(st2.Graph(), q, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !equal(m.Answers(), replayed.Matches) {
		log.Fatalf("replayed %v != live %v", replayed.Matches, m.Answers())
	}
	fmt.Printf("after restart+replay (%d journal records applied): %v — consistent\n",
		st2.Recovery().Applied, replayed.Matches)
}

func equal(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
