// Parallel quantified matching (§5): partition a social graph with the
// d-hop preserving DPar, then evaluate a QGP with PQMatch across worker
// counts, showing the linear reduction in per-worker work that the
// paper's parallel-scalability theorem promises.
//
// Run with: go run ./examples/parallelmatch
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/parallel"
	"repro/internal/partition"
)

func main() {
	g := gen.Social(gen.DefaultSocial(5000, 3))
	fmt.Printf("graph: %s\n", g.ComputeStats())

	// A radius-2 pattern with a ratio aggregate and a negated edge.
	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("z", "person")
	q.AddNode("p", "product")
	q.AddNode("bad", "product")
	q.AddEdge("xo", "z", "follow", core.RatioPercent(core.GE, 40))
	q.AddEdge("z", "p", "recom", core.Exists())
	q.AddEdge("xo", "bad", "bad_rating", core.Negated())

	d := parallel.RequiredHops(q)
	fmt.Printf("pattern radius requires d=%d hop preservation\n\n", d)
	fmt.Printf("%-4s %-10s %-12s %-12s %-8s %s\n",
		"n", "skew", "sim_work", "total_work", "matches", "speedup")

	var baseline int64
	for _, n := range []int{1, 2, 4, 8} {
		part, err := partition.DPar(g, partition.Config{Workers: n, D: d})
		if err != nil {
			log.Fatal(err)
		}
		if err := part.Validate(); err != nil {
			log.Fatalf("partition invariant violated: %v", err)
		}
		cluster := parallel.NewCluster(part)
		res, err := parallel.PQMatch(cluster, q, 2)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.SimWork
		}
		speedup := float64(baseline) / float64(res.SimWork)
		fmt.Printf("%-4d %-10.2f %-12d %-12d %-8d %.2fx\n",
			n, part.Skew(), res.SimWork, res.TotalWork, len(res.Matches), speedup)
	}
	fmt.Println("\nsim_work is the critical-path work (max per thread); it falls")
	fmt.Println("roughly linearly in n while the answer stays identical.")
}
