// Knowledge discovery with QGPs (the paper's Q4/Q5 and R7 examples):
// generate a YAGO2-like academic knowledge graph and query it with
// negation and numeric aggregates.
//
// Run with: go run ./examples/knowledge
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/rules"
)

func main() {
	g := gen.Knowledge(gen.DefaultKnowledge(6000, 11))
	fmt.Printf("knowledge graph: %s\n\n", g.ComputeStats())

	// Q4-style: professors without a PhD who advised ≥ 2 students who are
	// themselves professors.
	q4 := core.NewPattern()
	q4.AddNode("xo", "person")
	q4.AddNode("prof", "prof")
	q4.AddNode("phd", "PhD")
	q4.AddNode("z", "person")
	q4.AddEdge("xo", "prof", "is_a", core.Exists())
	q4.AddEdge("xo", "phd", "is_a", core.Negated())
	q4.AddEdge("xo", "z", "advisor", core.Count(core.GE, 2))
	q4.AddEdge("z", "prof", "is_a", core.Exists())

	res, err := match.QMatch(g, q4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q4: %d professors without a PhD advised ≥2 professor-students\n", len(res.Matches))

	// Universal variant: professors ALL of whose advisees hold PhDs.
	qU := core.NewPattern()
	qU.AddNode("xo", "person")
	qU.AddNode("prof", "prof")
	qU.AddNode("z", "person")
	qU.AddNode("phd", "PhD")
	qU.AddEdge("xo", "prof", "is_a", core.Exists())
	qU.AddEdge("xo", "z", "advisor", core.Universal())
	qU.AddEdge("z", "phd", "is_a", core.Exists())

	resU, err := match.QMatch(g, qU, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universal: %d professors whose every advisee holds a PhD\n\n", len(resU.Matches))

	// R7-style QGAR (Fig. 9): prize-winning professors with ≥2 students
	// likely advised a PhD holder.
	q1 := core.NewPattern()
	q1.AddNode("xo", "person")
	q1.AddNode("prof", "prof")
	q1.AddNode("prize", "prize")
	q1.AddNode("z", "person")
	q1.AddEdge("xo", "prof", "is_a", core.Exists())
	q1.AddEdge("xo", "prize", "won", core.Exists())
	q1.AddEdge("xo", "z", "advisor", core.Count(core.GE, 2))

	q2 := core.NewPattern()
	q2.AddNode("xo", "person")
	q2.AddNode("w", "person")
	q2.AddNode("phd", "PhD")
	q2.AddEdge("xo", "w", "advisor", core.Exists())
	q2.AddEdge("w", "phd", "is_a", core.Exists())

	r7, err := rules.New("R7", q1, q2)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := r7.Evaluate(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R7: support=%d confidence=%.2f\n", ev.Support, ev.Confidence)
	laureates, err := r7.Identify(g, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R7 identifies %d prize-winning advisors at η=0.5\n", len(laureates))
}
