// Multi-tenant demo: one qgpcluster-style front end, one shared
// fragmentation, two named tenant sessions. Alice and Bob each register a
// standing watch under the SAME local name — their namespaces keep the
// watches apart — then Alice mutates the graph: her update response
// carries only her own watch's delta, Bob picks his up with the deltas
// command, and Alice's next match is fenced at her write's version token
// so replica routing can never serve her pre-update state.
//
// The epilogue walks the QoS layer: Carol's oversized update batch
// exhausts her post-paid affected-set budget and her next write is
// refused with a retry-after, while Mallory — who watches but never
// drains — overflows her bounded delta inbox and is told to resync
// rather than being handed an incomplete delta stream.
//
// Run with: go run ./examples/multitenant
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/ha"
	"repro/internal/server"
	"repro/internal/tenant"
)

func main() {
	// The front end owns ONE cluster shared by every connection (the
	// default; -isolate restores the old cluster-per-connection model),
	// with fragment replicas placed from a worker pool for read
	// scale-out.
	pool := ha.NewSpawnPool(4, server.Config{})
	fe := cluster.NewFrontend(cluster.FrontendConfig{
		Cluster:    cluster.Config{D: 2, Replicas: 2, Pool: pool},
		NewWorkers: func() ([]cluster.Transport, error) { return pool.Primaries(2) },
		Tenancy: tenant.Config{
			MaxTenants:  64,
			IdleTimeout: time.Minute,
			// QoS knobs (qgpcluster: -tenant-affected, -tenant-inbox): a
			// tiny post-paid update budget — one real batch drives a
			// tenant's balance negative and its next update is refused
			// with a retry-after — and a 2-id cap on each watch's
			// undrained delta inbox, overflowing to a resync marker.
			AffectedPerSec: 5,
			AffectedBurst:  5,
			MaxPendingIDs:  2,
		},
		Logf: func(string, ...interface{}) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go fe.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := fe.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	addr := ln.Addr().String()
	fmt.Printf("qgpcluster front end on %s\n", addr)

	dial := func(session string) *client.Client {
		c, err := client.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		c.Timeout = 60 * time.Second
		if _, err := c.Session(session); err != nil {
			log.Fatal(err)
		}
		return c
	}
	alice := dial("alice")
	defer alice.Close()
	bob := dial("bob")
	defer bob.Close()

	// Alice loads the graph; Bob sees it immediately — one shared
	// fragmentation, not a cluster per connection.
	nodes, edges, err := alice.Gen("social", 1500, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice generated the shared graph: %d nodes, %d edges\n", nodes, edges)

	pattern := "qgp\nn xo person *\nn z person\ne xo z follow >=3\n"
	if res, err := bob.Match(pattern, nil); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("bob matches the shared graph without loading it: %d answers\n", res.Total)
	}

	// Both tenants watch under the local name "hot": two private watches
	// over one shared coordinator.
	wa, err := alice.Watch("hot", pattern)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Watch("hot", pattern); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice and bob both watch %q in private namespaces (%d initial answers)\n", "hot", len(wa.Matches))

	// Alice removes one of the answers. Her response carries her own
	// delta; Bob's copy waits in his inbox until he drains it.
	victim := wa.Matches[0]
	res, err := alice.UpdateWithDeltas(server.UpdateSpec{Op: "removeNode", From: victim})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Watch != "hot" {
		log.Fatalf("alice's writer delta: %+v", res.Deltas)
	}
	fmt.Printf("alice removed node %d; her update answered with her own delta -%v\n", victim, res.Deltas[0].Removed)

	bd, err := bob.Deltas()
	if err != nil {
		log.Fatal(err)
	}
	if len(bd) != 1 || bd[0].Watch != "hot" {
		log.Fatalf("bob's drained deltas: %+v", bd)
	}
	fmt.Printf("bob drained his namespace's delta: -%v on %q\n", bd[0].Removed, bd[0].Watch)

	// Read-your-writes: Alice's next match is fenced at her write's
	// version token, so whichever replica serves it must be synced past
	// the write — the removed node can never reappear.
	post, err := alice.Match(pattern, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range post.Matches {
		if v == victim {
			log.Fatalf("fenced read returned alice's removed answer %d", v)
		}
	}
	fmt.Printf("alice's fenced re-match: %d answers, her removed node gone\n", post.Total)

	// The session list is the tenancy observable: watches, writes, reads.
	infos, err := alice.Sessions()
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range infos {
		fmt.Printf("  session %-6s watches=%d writes=%d reads=%d\n", in.Name, in.Watches, in.Writes, in.Reads)
	}

	// Bob leaves; his watch is unregistered from the shared coordinator,
	// Alice's keeps running.
	if err := bob.EndSession(""); err != nil {
		log.Fatal(err)
	}
	infos, err = alice.Sessions()
	if err != nil {
		log.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "alice" {
		log.Fatalf("session list after bob left: %+v", infos)
	}
	fmt.Println("bob ended his session; alice's watch survives: two tenants, one fragmentation")

	// --- Per-tenant QoS: update budgets, throttling, bounded inboxes ---

	// Mallory watches but never drains her deltas.
	mallory := dial("mallory")
	defer mallory.Close()
	if _, err := mallory.Watch("hot", pattern); err != nil {
		log.Fatal(err)
	}
	if len(post.Matches) < 3 {
		log.Fatalf("only %d answers left; pick another seed", len(post.Matches))
	}

	// Carol removes three answers in one admitted batch. Updates are
	// billed post-paid in affected-set units — the re-verification region
	// the batch actually cost the shared cluster — so this one batch
	// drives her budget far below zero.
	carol := dial("carol")
	defer carol.Close()
	if _, _, err := carol.Update(
		server.UpdateSpec{Op: "removeNode", From: post.Matches[0]},
		server.UpdateSpec{Op: "removeNode", From: post.Matches[1]},
		server.UpdateSpec{Op: "removeNode", From: post.Matches[2]},
	); err != nil {
		log.Fatal(err)
	}
	// Her next update is refused with a typed retry-after on the wire;
	// everyone's reads (and drains) keep flowing.
	_, _, err = carol.Update(server.UpdateSpec{Op: "addEdge", From: 1, To: 2, Label: "follow"})
	var se *client.ServerError
	if !errors.As(err, &se) || se.RetryAfterMS <= 0 {
		log.Fatalf("expected a throttled update with a retry-after, got %v", err)
	}
	fmt.Printf("carol's second update throttled (retry in %.0fms): her first batch's affected-set cost exhausted her budget\n", se.RetryAfterMS)

	// Mallory never drained: three coalesced ids overflowed her 2-id
	// inbox cap, the stale state was dropped, and her drain now carries a
	// resync marker — re-read the answer set, the delta stream has a hole.
	md, err := mallory.Deltas()
	if err != nil {
		log.Fatal(err)
	}
	if len(md) != 1 || md[0].Watch != "hot" || !md[0].Resync {
		log.Fatalf("mallory's drain after overflow: %+v, want a resync marker", md)
	}
	fmt.Println("mallory's undrained inbox overflowed its cap; her drain says resync instead of an incomplete delta")
	resynced, err := mallory.Match(pattern, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mallory resynced by re-matching: %d answers\n", resynced.Total)

	// Throttle and overflow counts ride the session list (and the debug
	// endpoint's tenants rows, and the tenant.<name>.* metric series).
	infos, err = alice.Sessions()
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range infos {
		fmt.Printf("  session %-8s watches=%d throttled=%d overflows=%d pendingIds=%d\n",
			in.Name, in.Watches, in.Throttled, in.Overflows, in.PendingIDs)
	}
}
