// Cybersecurity: the paper's introduction names cyber security as a
// motivating application of counting quantifiers. This example detects
// two classic network behaviours on a simulated host-communication graph:
//
//  1. Scanning hosts: a workstation that opened connections to at least
//     20 distinct servers — a numeric aggregate ≥ 20 on a "connect" edge.
//  2. Likely-compromised servers: a server where at least 80% of the
//     workstations connecting to it were flagged by the IDS, and which
//     has no entry in the patch registry — a ratio quantifier combined
//     with negation (σ(e) = 0).
//
// Conventional patterns can express neither the ratio nor the negation;
// both are single QGPs here. The second is refined once more with a
// regular path constraint: the server must reach an external exfil sink
// through 1-3 "forward" hops.
//
// Run with: go run ./examples/cybersecurity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/rpq"
)

func main() {
	g, scanners, hot := buildNetwork()

	// --- Pattern 1: scanning workstations ---------------------------------
	scan := core.NewPattern()
	scan.AddNode("xo", "workstation")
	scan.AddNode("srv", "server")
	scan.AddEdge("xo", "srv", "connect", core.Count(core.GE, 20))

	res, err := match.QMatch(g, scan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanning workstations (≥20 distinct servers): %v\n", res.Matches)
	if !equal(res.Matches, scanners) {
		log.Fatalf("expected %v", scanners)
	}

	// --- Pattern 2: likely-compromised servers ----------------------------
	// Focus on servers; 80% of connecting workstations are IDS-flagged
	// (ratio over *incoming* connections, modeled by reversing the edge
	// into a "serves" edge at build time), and no "patched" edge exists.
	comp, err := core.Parse(`
qgp
n xo server *
n w workstation
n f ids_flag
n reg patch_registry
e xo w serves >=80%
e w f flagged
e xo reg patched =0
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = match.QMatch(g, comp, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("likely-compromised servers (≥80%% flagged clients, unpatched): %v\n", res.Matches)
	if !equal(res.Matches, hot) {
		log.Fatalf("expected %v", hot)
	}

	// --- Refinement: exfiltration reachability ----------------------------
	// Among those, keep servers that can reach an exfil sink through 1-3
	// forward hops. The path constraint composes as a post-filter.
	constraint, err := rpq.ParseConstraint("forward.forward?.forward? within 3 >=1")
	if err != nil {
		log.Fatal(err)
	}
	// The constraint counts reachable nodes; restrict to sink-labeled ones
	// by filtering reach sets directly.
	var exfil []graph.NodeID
	for _, v := range res.Matches {
		for _, u := range rpq.Reach(g, v, constraint.Expr, constraint.MaxLen) {
			if g.NodeLabelName(u) == "exfil_sink" {
				exfil = append(exfil, v)
				break
			}
		}
	}
	fmt.Printf("...with an exfil path within 3 forward hops: %v\n", exfil)
	if len(exfil) != 1 {
		log.Fatalf("expected exactly one exfil-capable server, got %v", exfil)
	}
	fmt.Println("ok")
}

// buildNetwork simulates a small enterprise network. It returns the graph,
// the scanner workstations, and the expected hot (compromised) servers.
func buildNetwork() (*graph.Graph, []graph.NodeID, []graph.NodeID) {
	r := rand.New(rand.NewSource(7))
	g := graph.New(256)

	registry := g.AddNode("patch_registry")
	flag := g.AddNode("ids_flag")
	sink := g.AddNode("exfil_sink")

	var servers []graph.NodeID
	for i := 0; i < 12; i++ {
		servers = append(servers, g.AddNode("server"))
	}
	var workstations []graph.NodeID
	for i := 0; i < 60; i++ {
		workstations = append(workstations, g.AddNode("workstation"))
	}

	// Normal traffic: each workstation talks to 2-5 ordinary servers
	// (servers[0] and servers[1] are reserved for the scenario below, so
	// their client mix stays controlled).
	for _, w := range workstations {
		n := 2 + r.Intn(4)
		for i := 0; i < n; i++ {
			s := servers[2+r.Intn(len(servers)-2)]
			g.AddEdge(w, s, "connect")
			g.AddEdge(s, w, "serves")
		}
	}

	// Two scanners hit 20+ servers each — more servers than exist above,
	// so give them their own scan targets.
	var scanTargets []graph.NodeID
	for i := 0; i < 22; i++ {
		scanTargets = append(scanTargets, g.AddNode("server"))
	}
	scanners := []graph.NodeID{workstations[0], workstations[1]}
	for _, w := range scanners {
		for _, s := range scanTargets {
			g.AddEdge(w, s, "connect")
		}
	}

	// Most servers are patched.
	for _, s := range servers[2:] {
		g.AddEdge(s, registry, "patched")
	}
	for _, s := range scanTargets {
		g.AddEdge(s, registry, "patched")
	}

	// servers[0] is hot: 5 clients, 4 flagged (80%), unpatched, and it
	// forwards toward the exfil sink through one relay.
	hot := servers[0]
	var hotClients []graph.NodeID
	for i := 0; i < 5; i++ {
		w := g.AddNode("workstation")
		hotClients = append(hotClients, w)
		g.AddEdge(w, hot, "connect")
		g.AddEdge(hot, w, "serves")
	}
	for _, w := range hotClients[:4] {
		g.AddEdge(w, flag, "flagged")
	}
	relay := g.AddNode("server")
	g.AddEdge(relay, registry, "patched")
	g.AddEdge(hot, relay, "forward")
	g.AddEdge(relay, sink, "forward")

	// servers[1] looks similar but is patched — it must NOT match.
	cold := servers[1]
	for i := 0; i < 5; i++ {
		w := g.AddNode("workstation")
		g.AddEdge(w, cold, "connect")
		g.AddEdge(cold, w, "serves")
		g.AddEdge(w, flag, "flagged")
	}
	g.AddEdge(cold, registry, "patched")

	g.Finalize()
	return g, scanners, []graph.NodeID{hot}
}

func equal(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
