// Quickstart: build a small social graph, write a quantified graph
// pattern (QGP), and evaluate it with QMatch.
//
// The pattern is the paper's running example Q2: find people all of whose
// followees (= 100%) recommend the "Redmi 2A" product.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
)

func main() {
	// A labeled directed graph: AddNode/AddEdge, then Finalize.
	g := graph.New(10)
	alice := g.AddNode("person")
	bob := g.AddNode("person")
	carol := g.AddNode("person")
	dave := g.AddNode("person")
	redmi := g.AddNode("Redmi 2A")

	g.AddEdge(alice, bob, "follow")
	g.AddEdge(alice, carol, "follow")
	g.AddEdge(dave, bob, "follow")
	g.AddEdge(dave, carol, "follow")
	g.AddEdge(dave, alice, "follow")
	g.AddEdge(bob, redmi, "recom")
	g.AddEdge(carol, redmi, "recom")
	g.Finalize()

	// Patterns can be built programmatically...
	q := core.NewPattern()
	q.AddNode("xo", "person")
	q.AddNode("z", "person")
	q.AddNode("phone", "Redmi 2A")
	q.AddEdge("xo", "z", "follow", core.Universal()) // σ(e) = 100%
	q.AddEdge("z", "phone", "recom", core.Exists())

	// ... or parsed from the DSL (this is the same pattern):
	parsed, err := core.Parse(`
qgp
n xo person *
n z person
n phone "Redmi 2A"
e xo z follow =100%
e z phone recom
`)
	if err != nil {
		log.Fatal(err)
	}
	if parsed.String() != q.String() {
		log.Fatal("DSL and builder disagree")
	}

	res, err := match.QMatch(g, q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("People whose every followee recommends the Redmi 2A:")
	for _, v := range res.Matches {
		fmt.Printf("  node %d\n", v)
	}
	// alice qualifies (bob and carol both recommend); dave does not (he
	// also follows alice, who recommends nothing).
	if len(res.Matches) != 1 || res.Matches[0] != alice {
		log.Fatalf("unexpected answer %v", res.Matches)
	}
	fmt.Printf("work: %d verifications, %d extension attempts\n",
		res.Metrics.Verifications, res.Metrics.Extensions)
}
