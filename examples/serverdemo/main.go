// Server demo: start a qgpd query server in-process, connect with the Go
// client, and run a marketing-analytics session against a generated
// social graph — statistics, a quantified pattern with the planner, the
// same query in parallel, an association rule, and a path-constrained
// refinement.
//
// Run with: go run ./examples/serverdemo
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{MaxConcurrent: 2})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	fmt.Printf("qgpd listening on %s\n", ln.Addr())

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 60 * time.Second

	// Generate a session graph on the server.
	nodes, edges, err := c.Gen("social", 2000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated social graph: %d nodes, %d edges\n", nodes, edges)

	// Inspect its statistics.
	st, err := c.Stats(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d node labels; top edge classes:\n", st.Labels)
	for _, tr := range st.Triples {
		fmt.Println("  " + tr)
	}

	// A quantified pattern: people ≥30% of whose followees recommend a
	// product they themselves buy.
	pattern := `qgp
n xo person *
n z person
n y product
e xo z follow >=30%
e z y recom
e xo y buy
`
	seq, err := c.Match(pattern, &client.MatchOptions{Planner: true, Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches: %d (showing %v), %.1fms, %d verifications\n",
		seq.Total, seq.Matches, seq.ElapsedMS, seq.Metrics.Verifications)

	// The same query over a 4-worker d-hop partition.
	par, err := c.PMatch(pattern, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	if par.Total != seq.Total {
		log.Fatalf("parallel total %d != sequential %d", par.Total, seq.Total)
	}
	fmt.Printf("parallel run agrees: %d matches in %.1fms\n", par.Total, par.ElapsedMS)

	// An association rule: "follows ≥3 people who recommend a product" ⇒
	// "buys a product".
	q1 := `qgp
n xo person *
n z person
n y product
e xo z follow >=3
e z y recom
`
	q2 := `qgp
n xo person *
n y product
e xo y buy
`
	rule, err := c.Rule(q1, q2, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule support=%d confidence=%.2f lift=%.2f identified=%d\n",
		rule.Support, rule.Confidence, rule.Lift, len(rule.Identified))

	// Path-constrained refinement: matches that reach ≥10 nodes through
	// 1-2 follow hops (influence radius).
	ref, err := c.RPQFilter(pattern, "follow.follow? within 2 >=10")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with influence radius ≥10 within 2 follow-hops: %d matches\n", ref.Total)

	// A standing pattern: big spenders (≥5 purchases), maintained
	// incrementally as updates stream in.
	watch, err := c.Watch("big-spenders", "qgp\nn xo person *\nn y product\ne xo y buy >=5\n")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watching big spenders: %d initially\n", watch.Total)
	// Person 0 goes on a shopping spree: five purchases of new products.
	var ups []server.UpdateSpec
	for i := 0; i < 5; i++ {
		ups = append(ups,
			server.UpdateSpec{Op: "addNode", Label: "product"},
			server.UpdateSpec{Op: "addEdge", From: 0, To: int64(nodes + i), Label: "buy"})
	}
	up, err := c.UpdateWithDeltas(ups...)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range up.Deltas {
		fmt.Printf("watch %q: +%v -%v (re-verified %d candidates)\n", d.Watch, d.Added, d.Removed, d.Affected)
	}

	fmt.Println("ok")
}
