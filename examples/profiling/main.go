// Profiling walkthrough: EXPLAIN a query before running it, PROFILE the
// execution, compare the planner's estimates with the observed candidate
// counts, then profile an incremental update and read the work∝change
// ratio off the document. Runs a qgpd server in-process and drives it
// with the stock client — everything shown here works identically over
// the wire against `qgpd` or `qgpcluster`.
//
// Run with: go run ./examples/profiling
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

const pattern = `qgp
n xo person *
n z person
n y product
e xo z follow >=2
e z y buy
`

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{MaxConcurrent: 2})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 60 * time.Second

	if _, _, err := c.Gen("social", 2000, 42); err != nil {
		log.Fatal(err)
	}

	// EXPLAIN: what order would the planner run, at what estimated cost?
	raw, err := c.Explain(pattern)
	if err != nil {
		log.Fatal(err)
	}
	var ex server.ExplainDoc
	if err := json.Unmarshal(raw, &ex); err != nil {
		log.Fatal(err)
	}
	for _, pp := range ex.Plan.Patterns {
		fmt.Printf("explain %s: order=%v estimated cost=%.0f\n", pp.Pattern, pp.Order, pp.Cost)
	}

	// PROFILE: execute and see where the work and time actually went.
	resp, err := c.ProfileMatch(pattern, nil)
	if err != nil {
		log.Fatal(err)
	}
	var mp server.MatchProfileDoc
	if err := json.Unmarshal(resp.Profile, &mp); err != nil {
		log.Fatal(err)
	}
	if mp.Profile == nil || len(mp.Profile.Patterns) == 0 {
		log.Fatal("profile document has no stage entries")
	}
	pi := mp.Profile.Patterns[0]
	fmt.Printf("profile %s: %d matches in %.2fms (compile %.2fms, eval %.2fms), order=%v\n",
		pi.Pattern, pi.Answers, mp.TotalMS, pi.CompileMS, pi.EvalMS, pi.Order)
	for _, n := range pi.Nodes {
		fmt.Printf("  node %-3s candidates=%-5d accepted=%d\n", n.Name, n.Candidates, n.Accepted)
		if n.Accepted > n.Candidates {
			log.Fatalf("acceptance filter grew the candidate set for %s", n.Name)
		}
	}
	if mp.Matches != resp.Total {
		log.Fatalf("document reports %d matches, response %d", mp.Matches, resp.Total)
	}

	// PROFILE an update: register a standing watch, apply a small batch,
	// and verify the incremental claim — the affected region stays far
	// below |V|, so maintenance work is proportional to the change. The
	// watch is a 1-hop pattern: the affected region is the watch-radius
	// ball around the touched endpoints, and on a dense social graph a
	// 2-hop ball already covers most of the graph — radius is the lever
	// that decides how incremental maintenance can be.
	const watchPattern = "qgp\nn xo person *\nn z person\ne xo z follow >=3\n"
	if _, err := c.Watch("campaign", watchPattern); err != nil {
		log.Fatal(err)
	}
	uresp, err := c.ProfileUpdate(
		server.UpdateSpec{Op: "addEdge", From: 1, To: 2, Label: "follow"},
	)
	if err != nil {
		log.Fatal(err)
	}
	var up server.UpdateProfileDoc
	if err := json.Unmarshal(uresp.Profile, &up); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update profile: batch=%d touched=%d affected=%d of %d nodes (work ratio %.4f)\n",
		up.BatchSize, up.Touched, up.AffectedSize, up.Nodes, up.WorkRatio)
	for _, ws := range up.Watches {
		fmt.Printf("  watch %s: affected=%d affected_ms=%.3f verify_ms=%.3f\n",
			ws.Watch, ws.Affected, ws.AffectedMS, ws.VerifyMS)
	}
	if up.AffectedSize >= up.Nodes/2 {
		log.Fatalf("1-edge batch re-verified %d of %d nodes; incremental path broken", up.AffectedSize, up.Nodes)
	}
	fmt.Println("profiling ok: work proportional to the change")
}
