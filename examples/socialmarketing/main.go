// Social media marketing with QGPs and QGARs (the paper's Example 1 and
// §6): generate a Pokec-like social graph, evaluate quantified patterns
// with ratio aggregates and negation, and identify potential customers
// with a quantified graph association rule.
//
// Run with: go run ./examples/socialmarketing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/rules"
)

func main() {
	g := gen.Social(gen.DefaultSocial(4000, 7))
	fmt.Printf("social graph: %s\n\n", g.ComputeStats())

	// Q1-style: people in a club, 60% of whose followees like one album.
	q1 := core.NewPattern()
	q1.AddNode("xo", "person")
	q1.AddNode("club", "club")
	q1.AddNode("z", "person")
	q1.AddNode("y", "album")
	q1.AddEdge("xo", "club", "in", core.Exists())
	q1.AddEdge("xo", "z", "follow", core.RatioPercent(core.GE, 60))
	q1.AddEdge("z", "y", "like", core.Exists())

	res, err := match.QMatch(g, q1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1 (ratio ≥60%%): %d club members whose taste concentrates on one album\n", len(res.Matches))

	// Q3-style with negation: at least 3 followees recommend a product and
	// none gave it a bad rating.
	q3 := core.NewPattern()
	q3.AddNode("xo", "person")
	q3.AddNode("z1", "person")
	q3.AddNode("z2", "person")
	q3.AddNode("p", "product")
	q3.AddEdge("xo", "z1", "follow", core.Count(core.GE, 3))
	q3.AddEdge("z1", "p", "recom", core.Exists())
	q3.AddEdge("xo", "z2", "follow", core.Negated())
	q3.AddEdge("z2", "p", "bad_rating", core.Exists())

	res3, err := match.QMatch(g, q3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q3 (≥3 recommenders, no bad-rating followee): %d safe recommendation targets\n", len(res3.Matches))
	fmt.Printf("   (IncQMatch re-examined %d cached matches instead of %d focus candidates)\n\n",
		res3.Metrics.IncCandidates, res3.Metrics.FocusCandidates)

	// R1-style QGAR: Q1 ⇒ buy(xo, product-the-community-recommends).
	q2 := core.NewPattern()
	q2.AddNode("xo", "person")
	q2.AddNode("prod", "product")
	q2.AddEdge("xo", "prod", "buy", core.Exists())
	antecedent := core.NewPattern()
	antecedent.AddNode("xo", "person")
	antecedent.AddNode("z", "person")
	antecedent.AddNode("prod", "product")
	antecedent.AddEdge("xo", "z", "follow", core.RatioPercent(core.GE, 50))
	antecedent.AddEdge("z", "prod", "recom", core.Exists())

	r1, err := rules.New("peer-recommendation ⇒ buy", antecedent, q2)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := r1.Evaluate(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QGAR %q:\n  support=%d  confidence=%.2f (over %d LCWA candidates)\n",
		r1.Name, ev.Support, ev.Confidence, ev.XoSize)

	customers, err := r1.Identify(g, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d potential customers identified at η=0.3\n\n", len(customers))

	// Mine further rules automatically (Exp-3).
	mined, err := rules.Mine(g, rules.MineConfig{
		MinSupport: 20, MinConfidence: 0.3, MinLift: 1.02, MaxRules: 3, StartRatioBP: 3000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top mined rules (lift-ranked, tautologies filtered):")
	for _, mr := range mined {
		fmt.Printf("  %-45s supp=%-5d conf=%.2f lift=%.2f\n",
			mr.Rule.Name, mr.Eval.Support, mr.Eval.Confidence, mr.Eval.Lift)
	}
}
