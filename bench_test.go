// Benchmarks reproducing the paper's evaluation: one testing.B target per
// table/figure (BenchmarkExp1..BenchmarkExp13, see DESIGN.md §4 for the
// figure mapping), plus micro-benchmarks of the core operations. The
// experiment benchmarks run the bench-package experiments at reduced
// scale; cmd/qgpbench runs them at full scale and prints the series.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parallel"
	"repro/internal/partition"
)

func runExperiment(b *testing.B, id int) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("no experiment %d", id)
	}
	sc := bench.Small()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(sc, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp1ResponseTime — Figure 8(a).
func BenchmarkExp1ResponseTime(b *testing.B) { runExperiment(b, 1) }

// BenchmarkExp2VaryNSocial — Figure 8(b).
func BenchmarkExp2VaryNSocial(b *testing.B) { runExperiment(b, 2) }

// BenchmarkExp3VaryNKnowledge — Figure 8(c).
func BenchmarkExp3VaryNKnowledge(b *testing.B) { runExperiment(b, 3) }

// BenchmarkExp4DParSocial — Figure 8(d).
func BenchmarkExp4DParSocial(b *testing.B) { runExperiment(b, 4) }

// BenchmarkExp5DParKnowledge — Figure 8(e).
func BenchmarkExp5DParKnowledge(b *testing.B) { runExperiment(b, 5) }

// BenchmarkExp6VaryQSocial — Figure 8(f).
func BenchmarkExp6VaryQSocial(b *testing.B) { runExperiment(b, 6) }

// BenchmarkExp7VaryQKnowledge — Figure 8(g).
func BenchmarkExp7VaryQKnowledge(b *testing.B) { runExperiment(b, 7) }

// BenchmarkExp8VaryNegSocial — Figure 8(h).
func BenchmarkExp8VaryNegSocial(b *testing.B) { runExperiment(b, 8) }

// BenchmarkExp9VaryNegKnowledge — Figure 8(i).
func BenchmarkExp9VaryNegKnowledge(b *testing.B) { runExperiment(b, 9) }

// BenchmarkExp10VaryPSocial — Figure 8(j).
func BenchmarkExp10VaryPSocial(b *testing.B) { runExperiment(b, 10) }

// BenchmarkExp11VaryPKnowledge — Figure 8(k).
func BenchmarkExp11VaryPKnowledge(b *testing.B) { runExperiment(b, 11) }

// BenchmarkExp12VaryG — Figure 8(l).
func BenchmarkExp12VaryG(b *testing.B) { runExperiment(b, 12) }

// BenchmarkExp13QGAR — Exp-3.
func BenchmarkExp13QGAR(b *testing.B) { runExperiment(b, 13) }

// --- Micro-benchmarks ----------------------------------------------------

func socialFixture(b *testing.B, persons int) (*graph.Graph, *core.Pattern) {
	b.Helper()
	g := gen.Social(gen.DefaultSocial(persons, 1))
	q := gen.Pattern(g, gen.PatternConfig{Nodes: 5, Edges: 7, RatioBP: 3000, NegEdges: 1, Seed: 1})
	return g, q
}

func BenchmarkQMatchSocial(b *testing.B) {
	g, q := socialFixture(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.QMatch(g, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQMatchNSocial(b *testing.B) {
	g, q := socialFixture(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.QMatchN(g, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumSocial(b *testing.B) {
	g, q := socialFixture(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.Enum(g, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDParSocial(b *testing.B) {
	g := gen.Social(gen.DefaultSocial(2000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.DPar(g, partition.Config{Workers: 4, D: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPQMatchSocial(b *testing.B) {
	g, q := socialFixture(b, 2000)
	if parallel.RequiredHops(q) > 2 {
		b.Skip("generated pattern exceeds d=2")
	}
	part, err := partition.DPar(g, partition.Config{Workers: 4, D: 2})
	if err != nil {
		b.Fatal(err)
	}
	c := parallel.NewCluster(part)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.PQMatch(c, q, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphGeneration(b *testing.B) {
	for _, kind := range []string{"social", "knowledge", "smallworld"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				switch kind {
				case "social":
					gen.Social(gen.DefaultSocial(2000, int64(i)))
				case "knowledge":
					gen.Knowledge(gen.DefaultKnowledge(2000, int64(i)))
				default:
					gen.SmallWorld(gen.SmallWorldConfig{Nodes: 2000, Edges: 4000, Seed: int64(i)})
				}
			}
		})
	}
}

func BenchmarkSimulationFilter(b *testing.B) {
	g, q := socialFixture(b, 2000)
	pi, _ := q.Pi()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// QMatch compiles (and simulates) per call; this isolates that cost.
		if _, err := match.QMatch(g, pi, &match.Options{FocusRestrict: []graph.NodeID{0}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatternGeneration(b *testing.B) {
	g := gen.Social(gen.DefaultSocial(2000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Pattern(g, gen.PatternConfig{
			Nodes: 5, Edges: 7, RatioBP: 3000, NegEdges: 1, Seed: int64(i),
		})
	}
}

func Example_quantifierDSL() {
	p, _ := core.Parse(`
qgp
n xo person *
n z person
e xo z follow >=80%
`)
	fmt.Print(p)
	// Output:
	// qgp
	// n xo person *
	// n z person
	// e xo z follow >=80%
}

// BenchmarkExp14PlannerAblation — extension ablation Ext-1.
func BenchmarkExp14PlannerAblation(b *testing.B) { runExperiment(b, 14) }

// BenchmarkExp15DynamicMaintenance — extension ablation Ext-2.
func BenchmarkExp15DynamicMaintenance(b *testing.B) { runExperiment(b, 15) }
